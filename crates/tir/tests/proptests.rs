//! Property-based tests of the TIR core: simplification, affine analysis and
//! schedule lowering must preserve semantics for arbitrary (valid) inputs.

use std::collections::HashMap;

use atim_tir::affine::{as_linear, as_upper_bound};
use atim_tir::buffer::Var;
use atim_tir::compute::ComputeDef;
use atim_tir::eval::{
    CompiledProgram, CompiledRunner, CountingTracer, ExecMode, Interpreter, MemoryStore,
};
use atim_tir::expr::{BinOp, Expr};
use atim_tir::schedule::{execute_functional, Attach, Binding, Schedule};
use atim_tir::simplify::simplify_expr;
use atim_tir::{Buffer, DType, MemScope, Stmt};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Evaluates a data-free integer expression under a variable assignment.
fn eval_int(expr: &Expr, env: &HashMap<u32, i64>) -> i64 {
    match expr {
        Expr::Int(v) => *v,
        Expr::Float(v) => *v as i64,
        Expr::Var(v) => env[&v.id],
        Expr::Binary(op, a, b) => {
            let x = eval_int(a, env);
            let y = eval_int(b, env);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::FloorDiv => {
                    if y == 0 {
                        0
                    } else {
                        x.div_euclid(y)
                    }
                }
                BinOp::FloorMod => {
                    if y == 0 {
                        0
                    } else {
                        x.rem_euclid(y)
                    }
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            }
        }
        Expr::Cmp(op, a, b) => {
            let x = eval_int(a, env);
            let y = eval_int(b, env);
            let r = match op {
                atim_tir::CmpOp::Lt => x < y,
                atim_tir::CmpOp::Le => x <= y,
                atim_tir::CmpOp::Gt => x > y,
                atim_tir::CmpOp::Ge => x >= y,
                atim_tir::CmpOp::Eq => x == y,
                atim_tir::CmpOp::Ne => x != y,
            };
            r as i64
        }
        Expr::And(a, b) => ((eval_int(a, env) != 0) && (eval_int(b, env) != 0)) as i64,
        Expr::Or(a, b) => ((eval_int(a, env) != 0) || (eval_int(b, env) != 0)) as i64,
        Expr::Not(a) => (eval_int(a, env) == 0) as i64,
        Expr::Select(c, a, b) => {
            if eval_int(c, env) != 0 {
                eval_int(a, env)
            } else {
                eval_int(b, env)
            }
        }
        Expr::Cast(_, a) => eval_int(a, env),
        Expr::Load { .. } => unreachable!("data-free expressions only"),
    }
}

/// Strategy: small integer expressions over two fixed variables.
fn arb_expr(vars: [Var; 2]) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Int),
        Just(Expr::Var(vars[0].clone())),
        Just(Expr::Var(vars[1].clone())),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner, 0usize..7).prop_map(|(a, b, op)| match op {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            3 => a.min(b),
            4 => a.max(b),
            5 => a.floordiv(b),
            _ => a.floormod(b),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplification_preserves_integer_semantics(
        seed_a in -10i64..10,
        seed_b in -10i64..10,
        expr_idx in 0u32..1,
    ) {
        // proptest closures cannot easily share the Var handles through the
        // strategy, so build them here deterministically per case.
        let _ = expr_idx;
        let i = Var::new("i");
        let j = Var::new("j");
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let expr = arb_expr([i.clone(), j.clone()])
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let simplified = simplify_expr(&expr);
        let mut env = HashMap::new();
        env.insert(i.id, seed_a);
        env.insert(j.id, seed_b);
        prop_assert_eq!(eval_int(&expr, &env), eval_int(&simplified, &env));
    }

    #[test]
    fn compiled_programs_match_the_tree_interpreter(
        seed_j in -10i64..10,
        expr_seed in 0u32..64,
    ) {
        // Random guarded loop nest: both engines must produce identical
        // traced event counts and identical memory in both exec modes.
        // The Var handles cannot be threaded through a strategy, so vary
        // the expressions by advancing the deterministic sampling stream
        // `expr_seed` words before drawing the two trees.
        let i = Var::new("i");
        let j = Var::new("j");
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..expr_seed {
            let _ = runner.next_u64();
        }
        let guard = arb_expr([i.clone(), j.clone()])
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let value = arb_expr([i.clone(), j.clone()])
            .new_tree(&mut runner)
            .unwrap()
            .current();
        let out = Buffer::new("out", DType::F32, vec![8], MemScope::Global);
        let body = Stmt::if_then(
            guard.gt(Expr::int(0)),
            Stmt::store(&out, Expr::var(&i).floormod(Expr::int(8)), value),
        );
        let prog = Stmt::for_serial(i, 6i64, body);

        for mode in [ExecMode::Functional, ExecMode::TimingOnly] {
            let mut tree_store = MemoryStore::new();
            tree_store.alloc(&out, 0);
            let mut tree_tracer = CountingTracer::default();
            let mut interp = Interpreter::new(&mut tree_store, &mut tree_tracer, mode);
            interp.bind(&j, seed_j);
            interp.run(&prog).unwrap();

            let compiled = CompiledProgram::compile(&prog);
            // The bytecode optimizer must preserve both the exact event
            // counts and the functional results on arbitrary kernels.
            for program in [compiled.clone(), compiled.optimize()] {
                let mut flat_store = MemoryStore::new();
                flat_store.alloc(&out, 0);
                let mut flat_tracer = CountingTracer::default();
                let mut flat = CompiledRunner::new(&program);
                flat.bind(&j, seed_j);
                flat.run(&mut flat_store, &mut flat_tracer, mode).unwrap();

                prop_assert_eq!(tree_tracer, flat_tracer);
                prop_assert_eq!(tree_store.read_all(&out, 0), flat_store.read_all(&out, 0));
            }
        }
    }

    #[test]
    fn affine_roundtrip_preserves_value(
        c0 in -50i64..50,
        c1 in -8i64..8,
        c2 in -8i64..8,
        x in -20i64..20,
        y in -20i64..20,
    ) {
        let i = Var::new("i");
        let j = Var::new("j");
        let expr = Expr::Int(c0)
            .add(Expr::var(&i).mul(Expr::Int(c1)))
            .add(Expr::var(&j).mul(Expr::Int(c2)));
        let lin = as_linear(&expr).expect("expression is affine by construction");
        prop_assert_eq!(lin.constant, c0);
        prop_assert_eq!(lin.coeff(&i), c1);
        prop_assert_eq!(lin.coeff(&j), c2);
        let back = lin.to_expr();
        let mut env = HashMap::new();
        env.insert(i.id, x);
        env.insert(j.id, y);
        prop_assert_eq!(eval_int(&expr, &env), eval_int(&back, &env));
    }

    #[test]
    fn upper_bound_normalization_is_equivalent(
        coef in 1i64..8,
        offset in -10i64..10,
        bound in -20i64..60,
        value in -30i64..30,
    ) {
        let k = Var::new("k");
        let cond = Expr::var(&k).mul(Expr::Int(coef)).add(Expr::Int(offset)).lt(Expr::Int(bound));
        let norm = as_upper_bound(&cond).expect("affine condition");
        let mut env = HashMap::new();
        env.insert(k.id, value);
        let direct = coef * value + offset < bound;
        let via_norm = eval_int(&norm.lhs.to_expr(), &env) < norm.bound;
        prop_assert_eq!(direct, via_norm);
    }

    #[test]
    fn mtv_schedules_match_reference_for_random_tilings(
        m in 3i64..40,
        k in 3i64..48,
        dpu_i in 1i64..6,
        dpu_k in 1i64..4,
        tasklets in 1i64..5,
        cache in 1i64..17,
    ) {
        let def = ComputeDef::mtv("mtv", m, k);
        let mut sch = Schedule::new(def.clone());
        let i = sch.loops_of_axis(0)[0];
        let kk = sch.loops_of_axis(1)[0];
        let mut grid = Vec::new();
        let mut i_rest = i;
        if dpu_i > 1 {
            let (i_dpu, i_in) = sch.split(i, (m + dpu_i - 1) / dpu_i).unwrap();
            sch.bind(i_dpu, Binding::DpuX).unwrap();
            grid.push(i_dpu);
            i_rest = i_in;
        }
        let mut k_rest = kk;
        if dpu_k > 1 {
            let (k_dpu, k_in) = sch.split(kk, (k + dpu_k - 1) / dpu_k).unwrap();
            sch.rfactor(k_dpu).unwrap();
            sch.bind(k_dpu, Binding::DpuY).unwrap();
            grid.push(k_dpu);
            k_rest = k_in;
        }
        let mut order = grid.clone();
        let i_extent = sch.loop_info(i_rest).unwrap().extent;
        let mut tasklet_rest = i_rest;
        if tasklets > 1 && i_extent > 1 {
            let (t, rest) = sch.split(i_rest, (i_extent + tasklets - 1) / tasklets).unwrap();
            sch.bind(t, Binding::Tasklet).unwrap();
            order.push(t);
            tasklet_rest = rest;
        }
        order.push(tasklet_rest);
        let k_extent = sch.loop_info(k_rest).unwrap().extent;
        let mut cache_attach = k_rest;
        let mut innermost = k_rest;
        if cache < k_extent {
            let (ko, ki) = sch.split(k_rest, cache).unwrap();
            cache_attach = ko;
            innermost = ki;
            order.push(ko);
            order.push(ki);
        } else {
            order.push(k_rest);
        }
        sch.reorder(&order).unwrap();
        sch.cache_read(0, Attach::At(cache_attach)).unwrap();
        sch.cache_read(1, Attach::At(cache_attach)).unwrap();
        sch.cache_write(Attach::At(tasklet_rest)).unwrap();
        let _ = innermost;

        let lowered = sch.lower().unwrap();
        let inputs: Vec<Vec<f32>> = vec![
            (0..(m * k) as usize).map(|v| ((v % 7) as f32) - 3.0).collect(),
            (0..k as usize).map(|v| ((v % 5) as f32) - 2.0).collect(),
        ];
        let got = execute_functional(&lowered, &inputs).unwrap();
        let expect = def.reference(&inputs);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-2, "{} vs {}", g, e);
        }

        // The optimized kernel bytecode (fusion, hoisting, timing-only loop
        // summaries) must trace the exact same event counts as the baseline
        // for every randomized tiling — these counts are the only input to
        // the simulator's cycle model, so this pins latency equivalence.
        let kernel = CompiledProgram::compile(&lowered.kernel.body);
        let optimized = kernel.optimize();
        for (linear, coords) in lowered.grid.enumerate() {
            let mut base_tracer = CountingTracer::default();
            let mut opt_tracer = CountingTracer::default();
            for (program, tracer) in [(&kernel, &mut base_tracer), (&optimized, &mut opt_tracer)] {
                let mut store = MemoryStore::new();
                let mut runner = CompiledRunner::new(program);
                runner.set_dpu(linear);
                for (dim, coord) in lowered.grid.dims.iter().zip(&coords) {
                    runner.bind(&dim.var, *coord);
                }
                runner
                    .run(&mut store, tracer, ExecMode::TimingOnly)
                    .unwrap();
            }
            prop_assert_eq!(base_tracer, opt_tracer, "kernel counts diverge on DPU {}", linear);
        }
    }
}
