//! Property tests of the fleet's reconnect backoff schedule: for any
//! (base, cap) policy the delays are deterministic, never exceed the cap,
//! and never shrink as the attempt count grows — the three facts the
//! supervisor's reconnect loop and `Client::with_retry` both rely on.

use std::time::Duration;

use atim_core::backoff_delay;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backoff_is_deterministic(
        attempt in 0u32..64,
        base_ms in 0u64..10_000,
        cap_ms in 0u64..60_000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        let first = backoff_delay(attempt, base, cap);
        let second = backoff_delay(attempt, base, cap);
        prop_assert_eq!(first, second, "no jitter, no hidden state");
    }

    #[test]
    fn backoff_never_exceeds_the_cap(
        attempt in 1u32..1024,
        base_ms in 0u64..10_000,
        cap_ms in 0u64..60_000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        prop_assert!(backoff_delay(attempt, base, cap) <= cap);
    }

    #[test]
    fn backoff_starts_immediate_then_never_shrinks(
        attempts in 1u32..256,
        base_ms in 1u64..10_000,
        cap_ms in 1u64..60_000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        prop_assert_eq!(backoff_delay(0, base, cap), Duration::ZERO);
        let mut previous = Duration::ZERO;
        for attempt in 1..=attempts {
            let delay = backoff_delay(attempt, base, cap);
            prop_assert!(
                delay >= previous,
                "delay shrank from {:?} to {:?} at attempt {}",
                previous,
                delay,
                attempt
            );
            previous = delay;
        }
    }

    #[test]
    fn backoff_doubles_until_the_cap(
        attempt in 1u32..20,
        base_ms in 1u64..1_000,
    ) {
        // With an unreachable cap the schedule is exactly base * 2^(n-1).
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_secs(u64::MAX / 2);
        let expected = base * (1u32 << (attempt - 1));
        prop_assert_eq!(backoff_delay(attempt, base, cap), expected);
    }
}
