//! Results of an autotuning session, packaged for downstream use.

use atim_autotune::log::TuneLog;
use atim_autotune::{ScheduleConfig, Trace, TuningRecord, TuningResult};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;

/// The outcome of [`crate::Session::tune`]: the tuned trace plus the full
/// search history.
#[derive(Debug, Clone)]
pub struct TunedModule {
    def: ComputeDef,
    result: TuningResult,
    fallback: Trace,
}

impl TunedModule {
    /// Wraps a tuning result, providing a sensible fallback trace in case
    /// every measurement failed.
    pub fn new(def: ComputeDef, result: TuningResult, hw: &UpmemConfig) -> Self {
        let fallback = ScheduleConfig::default_for(&def, hw).to_trace(&def);
        TunedModule {
            def,
            result,
            fallback,
        }
    }

    /// The computation this module was tuned for.
    pub fn def(&self) -> &ComputeDef {
        &self.def
    }

    /// The best trace found (or the fallback if tuning failed).
    pub fn best_trace(&self) -> &Trace {
        self.result
            .best
            .as_ref()
            .map(|(c, _)| c)
            .unwrap_or(&self.fallback)
    }

    /// The best candidate's UPMEM knob vector — the human-readable view of
    /// [`TunedModule::best_trace`] used by reports and examples.
    ///
    /// # Panics
    /// Panics when the best trace came from a custom space generator without
    /// the UPMEM decision sites; read [`TunedModule::best_trace`] directly in
    /// that case.
    pub fn best_config(&self) -> ScheduleConfig {
        ScheduleConfig::from_trace(self.best_trace())
            .expect("best trace lacks the UPMEM knob sites; use best_trace()")
    }

    /// Best measured latency in seconds (infinity if nothing was measured).
    pub fn best_latency_s(&self) -> f64 {
        self.result.best_latency()
    }

    /// Measured throughput of the best candidate in GFLOP/s.
    pub fn best_gflops(&self) -> f64 {
        let lat = self.best_latency_s();
        if !lat.is_finite() || lat <= 0.0 {
            return 0.0;
        }
        self.def.total_flops() as f64 / lat / 1e9
    }

    /// Full per-trial history (for convergence plots).
    pub fn history(&self) -> &[TuningRecord] {
        &self.result.history
    }

    /// The raw tuning result (best candidate, history and counters).
    pub fn result(&self) -> &TuningResult {
        &self.result
    }

    /// Packages the tuning run as a durable [`TuneLog`] (pass the seed the
    /// search ran with so a warm start can reproduce its trajectory).
    pub fn to_log(&self, seed: u64) -> TuneLog {
        TuneLog::new(&self.def.name, seed, self.result.clone())
    }

    /// Number of candidates rejected by the UPMEM verifier.
    pub fn rejected(&self) -> usize {
        self.result.rejected
    }

    /// Number of successful measurements (the consumed trial budget).
    pub fn measured(&self) -> usize {
        self.result.measured
    }

    /// Number of measurements that failed to build or run.  Failures do not
    /// consume trial budget.
    pub fn failed(&self) -> usize {
        self.result.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_autotune::TuningResult;

    fn empty_result() -> TuningResult {
        TuningResult {
            best: None,
            history: Vec::new(),
            measured: 0,
            failed: 2,
            rejected: 3,
        }
    }

    #[test]
    fn falls_back_when_tuning_failed() {
        let def = ComputeDef::va("va", 1024);
        let hw = UpmemConfig::default();
        let tuned = TunedModule::new(def, empty_result(), &hw);
        assert_eq!(tuned.best_latency_s(), f64::INFINITY);
        assert_eq!(tuned.best_gflops(), 0.0);
        assert_eq!(tuned.rejected(), 3);
        assert_eq!(tuned.failed(), 2);
        assert!(tuned.best_trace().num_dpus() >= 1);
        assert!(tuned.best_config().num_dpus() >= 1);
    }

    #[test]
    fn reports_best_when_present() {
        let def = ComputeDef::va("va", 1 << 20);
        let hw = UpmemConfig::default();
        let cfg = ScheduleConfig::default_for(&def, &hw);
        let result = TuningResult {
            best: Some((cfg.to_trace(&def), 1e-3)),
            history: Vec::new(),
            measured: 1,
            failed: 0,
            rejected: 0,
        };
        let tuned = TunedModule::new(def.clone(), result, &hw);
        assert_eq!(tuned.best_config(), cfg);
        assert!((tuned.best_latency_s() - 1e-3).abs() < 1e-12);
        let expected_gflops = def.total_flops() as f64 / 1e-3 / 1e9;
        assert!((tuned.best_gflops() - expected_gflops).abs() < 1e-9);
    }
}
