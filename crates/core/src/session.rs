//! The session-based public API: one [`Session`] per target machine, built
//! once and reused across compiles, tuning runs and executions.
//!
//! A session ties a [`Backend`] (how candidates are compiled/timed/executed
//! — the simulator by default, an analytic model for tests, anything
//! user-provided for real hardware) to the autotuning stack.  Tuning
//! follows the paper's "search ~1000 trials once, then reuse the tuned
//! program" workflow end to end:
//!
//! * [`Session::tune`] — blocking search, validated options, typed errors.
//! * [`Session::tune_observed`] — the same search under a
//!   [`Budget`] (trials / wall-clock / early-stop) with streaming
//!   [`TuningObserver`] callbacks.
//! * [`Session::tune_warm`] — resume from a [`TuneLog`]: known
//!   measurements are answered from the log, only new candidates touch the
//!   backend.
//! * [`Session::replay`] — skip searching entirely: rebuild the
//!   [`TunedModule`] a saved log describes (tune once, serve many).
//! * [`Session::tune_cached`] / [`Session::cached`] — the fleet-wide form
//!   of replay: resolve an already-tuned `(workload, shape, machine,
//!   generator)` key from a persistent
//!   [`ScheduleCache`] without a single
//!   measurement, and record fresh tuning wins back into it.  Ship the
//!   cache file with your program (`ATIM_SCHEDULE_CACHE`) and cold start
//!   becomes a lookup.

use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use atim_autotune::log::TuneLog;
use atim_autotune::session::{Budget, NullObserver, TuningError, TuningObserver, TuningSession};
use atim_autotune::{
    CacheEntry, CacheKey, CostModelKind, ScheduleCache, ScheduleConfig, SpaceGenerator, Trace,
    TuningOptions, TuningResult, UpmemSketchGenerator, WarmStartMeasurer,
};
use atim_model::GbdtModel;
use atim_sim::{ExecutionReport, UpmemConfig};
use atim_tir::compute::ComputeDef;
use atim_tir::error::{Result as TirResult, TirError};

use crate::backend::{Backend, SimBackend};
use crate::compiler::{CompileOptions, CompiledModule};
use crate::measure::BackendMeasurer;
use crate::runtime::ExecutedRun;
use crate::tuned::TunedModule;

/// Errors surfaced by session-level operations that span tuning and
/// compilation.
#[derive(Debug)]
pub enum SessionError {
    /// The tuning options were inconsistent (caught at session start).
    Tuning(TuningError),
    /// Compilation or execution failed.
    Tir(TirError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Tuning(e) => write!(f, "{e}"),
            SessionError::Tir(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<TuningError> for SessionError {
    fn from(e: TuningError) -> Self {
        SessionError::Tuning(e)
    }
}

impl From<TirError> for SessionError {
    fn from(e: TirError) -> Self {
        SessionError::Tir(e)
    }
}

/// Builder for [`Session`].
///
/// `hardware` and `compile_options` configure the default simulator
/// backend; providing an explicit [`SessionBuilder::backend`] overrides
/// both (the backend then defines the machine it measures on).
#[derive(Default)]
pub struct SessionBuilder {
    hw: Option<UpmemConfig>,
    compile_options: Option<CompileOptions>,
    backend: Option<Arc<dyn Backend>>,
    measure_threads: Option<usize>,
    generator: Option<Arc<dyn SpaceGenerator>>,
    cache_path: Option<PathBuf>,
    cache: Option<Arc<Mutex<ScheduleCache>>>,
    cost_model: Option<CostModelKind>,
    pretrained: Option<GbdtModel>,
    pretrained_path: Option<PathBuf>,
}

impl SessionBuilder {
    /// Targets a machine configuration (default: the paper's 2048-DPU
    /// UPMEM server).
    pub fn hardware(mut self, hw: UpmemConfig) -> Self {
        self.hw = Some(hw);
        self
    }

    /// Sets the compile options applied to every module (default: all three
    /// PIM-aware passes plus rank-parallel transfers).
    pub fn compile_options(mut self, options: CompileOptions) -> Self {
        self.compile_options = Some(options);
        self
    }

    /// Sets an explicit worker-thread count for the default simulator
    /// backend (1 = sequential; `build` panics on 0, matching the
    /// fail-loudly `ATIM_MEASURE_THREADS` contract).  Ignored when a
    /// custom backend is given.
    pub fn measure_threads(mut self, threads: usize) -> Self {
        self.measure_threads = Some(threads);
        self
    }

    /// Plugs in a custom measurement backend, replacing the default
    /// simulator (and any `hardware`/`compile_options` set on the builder).
    pub fn backend(mut self, backend: impl Backend + 'static) -> Self {
        self.backend = Some(Arc::new(backend));
        self
    }

    /// Like [`SessionBuilder::backend`] for an already-shared backend.
    pub fn backend_arc(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Plugs in a custom schedule-space generator, replacing the default
    /// UPMEM sketch: every tuning run of the session proposes candidates
    /// from this generator's sketches.
    pub fn space_generator(mut self, generator: impl SpaceGenerator + 'static) -> Self {
        self.generator = Some(Arc::new(generator));
        self
    }

    /// Like [`SessionBuilder::space_generator`] for an already-shared
    /// generator.
    pub fn space_generator_arc(mut self, generator: Arc<dyn SpaceGenerator>) -> Self {
        self.generator = Some(generator);
        self
    }

    /// Attaches a persistent [`ScheduleCache`] backed by `path`: tuning
    /// wins are appended there, and [`Session::cached`] /
    /// [`Session::tune_cached`] resolve hits from it without measuring.
    /// The file is created on the first recorded win; a missing file is an
    /// empty cache, not an error.
    pub fn schedule_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Like [`SessionBuilder::schedule_cache`] for an already-loaded,
    /// shared cache (the tuning server shares one across sessions).
    pub fn schedule_cache_shared(mut self, cache: Arc<Mutex<ScheduleCache>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Selects the cost estimator every tuning run of the session ranks
    /// candidates with: the resident ridge regression (the default) or the
    /// gradient-boosted trees from `atim-model`.  When not set explicitly,
    /// the `ATIM_COST_MODEL` environment variable chooses (`build` panics
    /// loudly on an invalid value, matching the `ATIM_MEASURE_THREADS`
    /// contract).
    pub fn cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = Some(kind);
        self
    }

    /// Warm-starts every tuning run from a pretrained gradient-boosted
    /// model (implies [`CostModelKind::Gbdt`]): the search ranks its very
    /// first round with the transferred model instead of a cold estimator,
    /// and online per-round updates refine a per-run copy.  Train one with
    /// the `atim-train` binary on a TuneLog corpus.
    pub fn pretrained_cost_model(mut self, model: GbdtModel) -> Self {
        self.pretrained = Some(model);
        self.cost_model = Some(CostModelKind::Gbdt);
        self
    }

    /// Like [`SessionBuilder::pretrained_cost_model`], loading the model
    /// from a file saved by `atim-train` / [`GbdtModel::save`] at `build`
    /// time (panicking loudly when the file is unreadable or corrupt).
    pub fn pretrained_cost_model_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.pretrained_path = Some(path.into());
        self.cost_model = Some(CostModelKind::Gbdt);
        self
    }

    /// Builds the session.
    ///
    /// When no cache was configured explicitly, the `ATIM_SCHEDULE_CACHE`
    /// environment variable names the cache file to attach (the "ship the
    /// cache with your program" mode).  When no space generator was
    /// configured explicitly, the `ATIM_SPACE_GENERATOR` environment
    /// variable selects one of the resident generators (`upmem`, `tiled`,
    /// `hw-native`); unset keeps the UPMEM sketch default.
    ///
    /// # Panics
    /// Panics when the default simulator backend is constructed while
    /// `ATIM_MEASURE_THREADS` holds an invalid value (zero or non-numeric),
    /// when no cost model was chosen explicitly and `ATIM_COST_MODEL` holds
    /// an invalid value, when no space generator was chosen explicitly and
    /// `ATIM_SPACE_GENERATOR` holds an unknown id, when a configured
    /// pretrained model file cannot be read or parsed, or when a configured
    /// cache file exists but cannot be read or parsed — corrupt
    /// configuration fails loudly rather than silently tuning with
    /// something else.
    pub fn build(self) -> Session {
        let cost_model = match self.cost_model {
            Some(kind) => kind,
            None => CostModelKind::from_env()
                .unwrap_or_else(|e| panic!("{e}"))
                .unwrap_or_default(),
        };
        let pretrained = match (self.pretrained, self.pretrained_path) {
            (Some(model), _) => Some(Arc::new(model)),
            (None, Some(path)) => {
                let model = GbdtModel::load(&path).unwrap_or_else(|e| {
                    panic!(
                        "pretrained cost model {} is unreadable: {e}",
                        path.display()
                    )
                });
                Some(Arc::new(model))
            }
            (None, None) => None,
        };
        let backend = match self.backend {
            Some(backend) => backend,
            None => {
                let hw = self.hw.unwrap_or_default();
                let options = self.compile_options.unwrap_or_default();
                Arc::new(match self.measure_threads {
                    Some(threads) => SimBackend::with_threads(hw, options, threads),
                    None => SimBackend::new(hw, options),
                })
            }
        };
        let cache = match (self.cache, self.cache_path) {
            (Some(cache), _) => Some(cache),
            (None, Some(path)) => {
                let cache = ScheduleCache::open(&path).unwrap_or_else(|e| {
                    panic!("schedule cache {} is unreadable: {e}", path.display())
                });
                Some(Arc::new(Mutex::new(cache)))
            }
            (None, None) => ScheduleCache::from_env()
                .unwrap_or_else(|e| {
                    panic!(
                        "schedule cache named by {} is unreadable: {e}",
                        atim_autotune::SCHEDULE_CACHE_ENV
                    )
                })
                .map(|c| Arc::new(Mutex::new(c))),
        };
        let generator = match self.generator {
            Some(generator) => generator,
            None => atim_autotune::generator_from_env()
                .unwrap_or_else(|e| panic!("{e}"))
                .unwrap_or_else(|| Arc::new(UpmemSketchGenerator)),
        };
        Session {
            backend,
            generator,
            cache,
            cost_model,
            pretrained,
        }
    }
}

/// The ATiM compiler + autotuner + runtime session for one target machine.
///
/// Cloning is cheap (the backend is shared), and every method takes
/// `&self`, so one session can serve many workloads — or many threads —
/// concurrently.
#[derive(Clone)]
pub struct Session {
    backend: Arc<dyn Backend>,
    generator: Arc<dyn SpaceGenerator>,
    cache: Option<Arc<Mutex<ScheduleCache>>>,
    cost_model: CostModelKind,
    pretrained: Option<Arc<GbdtModel>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("backend", &self.backend.name())
            .field("dpus", &self.backend.hardware().total_dpus())
            .finish()
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new(UpmemConfig::default())
    }
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Creates a session on the default simulator backend for a machine.
    ///
    /// # Panics
    /// Panics when `ATIM_MEASURE_THREADS` holds an invalid value (zero or
    /// non-numeric).
    pub fn new(hw: UpmemConfig) -> Self {
        Session::builder().hardware(hw).build()
    }

    /// Creates a session with explicit compile options (used by the
    /// ablation benchmarks).
    pub fn with_options(hw: UpmemConfig, compile_options: CompileOptions) -> Self {
        Session::builder()
            .hardware(hw)
            .compile_options(compile_options)
            .build()
    }

    /// The target machine configuration.
    pub fn hardware(&self) -> &UpmemConfig {
        self.backend.hardware()
    }

    /// The compile options applied to every module.
    pub fn compile_options(&self) -> CompileOptions {
        self.backend.compile_options()
    }

    /// The measurement backend.
    pub fn backend(&self) -> &dyn Backend {
        &*self.backend
    }

    /// The schedule-space generator tuning runs propose candidates from.
    pub fn space_generator(&self) -> &Arc<dyn SpaceGenerator> {
        &self.generator
    }

    /// The cost estimator kind tuning runs rank candidates with.
    pub fn cost_model(&self) -> CostModelKind {
        self.cost_model
    }

    /// The pretrained gradient-boosted model tuning runs warm-start from,
    /// if one was configured.
    pub fn pretrained_cost_model(&self) -> Option<&Arc<GbdtModel>> {
        self.pretrained.as_ref()
    }

    /// Builds one run's [`TuningSession`], attaching the selected cost
    /// estimator (each run boosts a private copy of any pretrained model,
    /// so concurrent runs never share mutable estimator state).
    fn tuning_session(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
    ) -> Result<TuningSession, TuningError> {
        let session = TuningSession::with_generator(
            def,
            self.hardware(),
            options,
            Arc::clone(&self.generator),
        )?;
        Ok(match self.cost_model {
            CostModelKind::Ridge => session,
            CostModelKind::Gbdt => {
                let model = self
                    .pretrained
                    .as_ref()
                    .map(|m| (**m).clone())
                    .unwrap_or_default();
                session.with_cost_estimator(Box::new(model))
            }
        })
    }

    /// The attached schedule cache, if any.
    pub fn schedule_cache(&self) -> Option<&Arc<Mutex<ScheduleCache>>> {
        self.cache.as_ref()
    }

    /// The cache coordinates of a workload on this session: its kind and
    /// exact shape, the backend's machine fingerprint, and the space
    /// generator's id.  Two sessions produce the same key exactly when a
    /// schedule tuned on one is valid and optimal-as-measured on the other.
    pub fn cache_key(&self, def: &ComputeDef) -> CacheKey {
        CacheKey::new(def, self.backend.fingerprint(), self.generator.name())
    }

    /// Resolves a workload straight from the attached [`ScheduleCache`],
    /// performing **zero** candidate measurements: on a hit the cached
    /// best trace is re-materialized through the session's generator and
    /// wrapped in a [`TunedModule`] carrying the cached latency.  `None`
    /// when no cache is attached, the key misses, or the cached trace no
    /// longer materializes for `def` (a stale entry is a miss, not an
    /// error).
    ///
    /// Hits are structure-verified: an entry whose generator id matches
    /// but whose trace carries a different decision-site skeleton than
    /// this session's generator produces for `def` (a generator-id
    /// collision, or an entry written by an incompatible generator
    /// version) is reported on stderr and treated as a miss, never
    /// silently re-materialized.
    pub fn cached(&self, def: &ComputeDef) -> Option<TunedModule> {
        let cache = self.cache.as_ref()?;
        let key = self.cache_key(def);
        let expected = self
            .generator
            .sketches(def, self.hardware())
            .first()
            .map(atim_autotune::sketch_structure_hash);
        let entry = {
            let cache = cache.lock().expect("schedule cache poisoned");
            let entry = match &expected {
                Some(expected) => match cache.lookup_verified(&key, expected) {
                    Ok(entry) => entry,
                    Err(e) => {
                        eprintln!("atim: schedule cache entry rejected: {e}");
                        None
                    }
                },
                None => cache.lookup(&key),
            };
            entry?.clone()
        };
        let trace = self
            .generator
            .materialize(&entry.trace, def, self.hardware())
            .ok()?;
        let result = TuningResult {
            best: Some((trace, entry.latency_s)),
            history: Vec::new(),
            measured: 0,
            failed: 0,
            rejected: 0,
        };
        Some(TunedModule::new(def.clone(), result, self.hardware()))
    }

    /// Tunes through the cache: a hit returns immediately (zero
    /// measurements, see [`Session::cached`]); a miss runs the full search
    /// and records the win back into the cache for every later process.
    ///
    /// # Errors
    /// Returns a [`TuningError`] when `options` is inconsistent.
    pub fn tune_cached(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
    ) -> Result<TunedModule, TuningError> {
        self.tune_cached_observed(def, options, &Budget::unlimited(), &mut NullObserver)
    }

    /// [`Session::tune_cached`] under a [`Budget`] with streaming
    /// [`TuningObserver`] callbacks.  Cache hits return before the observer
    /// sees a single trial.
    ///
    /// # Errors
    /// Returns a [`TuningError`] when `options` is inconsistent.
    pub fn tune_cached_observed(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
        budget: &Budget,
        observer: &mut dyn TuningObserver,
    ) -> Result<TunedModule, TuningError> {
        atim_autotune::validate_options(options)?;
        if let Some(hit) = self.cached(def) {
            return Ok(hit);
        }
        self.tune_observed(def, options, budget, observer)
    }

    /// Records a tuning result's best schedule into the attached cache (a
    /// no-op without one, or when the result found nothing).  Cache I/O
    /// failures are reported on stderr but never fail the tuning run that
    /// produced the result.
    fn record_best(&self, def: &ComputeDef, seed: u64, result: &TuningResult) {
        let (Some(cache), Some((trace, latency_s))) = (self.cache.as_ref(), result.best.as_ref())
        else {
            return;
        };
        let entry = CacheEntry {
            key: self.cache_key(def),
            trace: trace.clone(),
            latency_s: *latency_s,
            seed,
        };
        if let Err(e) = cache.lock().expect("schedule cache poisoned").record(entry) {
            eprintln!("atim: schedule cache write failed (result kept in memory): {e}");
        }
    }

    /// Compiles a candidate trace for a computation.
    ///
    /// # Errors
    /// Propagates trace application and lowering errors.
    pub fn compile(&self, trace: &Trace, def: &ComputeDef) -> TirResult<CompiledModule> {
        self.backend.compile(trace, def)
    }

    /// Compiles a knob-vector configuration — the convenience form of
    /// [`Session::compile`] for fixed baseline configs.
    ///
    /// # Errors
    /// Propagates schedule instantiation and lowering errors.
    pub fn compile_config(
        &self,
        config: &ScheduleConfig,
        def: &ComputeDef,
    ) -> TirResult<CompiledModule> {
        self.backend.compile(&config.to_trace(def), def)
    }

    /// Times a compiled module without moving tensor data.
    ///
    /// # Errors
    /// Fails if the module exceeds the machine's resources.
    pub fn time(&self, module: &CompiledModule) -> TirResult<ExecutionReport> {
        self.backend.time(module)
    }

    /// Executes a compiled module with real data.
    ///
    /// # Errors
    /// Propagates runtime errors (resource limits, bad input shapes).
    pub fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> TirResult<ExecutedRun> {
        self.backend.execute(module, inputs)
    }

    /// Measures the end-to-end latency of a candidate trace, or `None` for
    /// candidates that fail to compile or run.
    pub fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        self.backend.measure(trace, def)
    }

    /// Measures a knob-vector configuration — the convenience form of
    /// [`Session::measure`] for fixed baseline configs.
    pub fn measure_config(&self, config: &ScheduleConfig, def: &ComputeDef) -> Option<f64> {
        self.backend.measure(&config.to_trace(def), def)
    }

    /// Runs the full autotuning flow for a computation — the blocking
    /// convenience form of [`Session::tune_observed`].
    ///
    /// # Errors
    /// Returns a [`TuningError`] when `options` is inconsistent; the
    /// options are validated before any search work happens.
    pub fn tune(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
    ) -> Result<TunedModule, TuningError> {
        self.tune_observed(def, options, &Budget::unlimited(), &mut NullObserver)
    }

    /// Runs the autotuning flow under a [`Budget`] with streaming
    /// [`TuningObserver`] callbacks (one `on_trial` per measured
    /// candidate).
    ///
    /// Measurement goes through the session's backend one round-sized batch
    /// at a time, with a cross-round `(config) → latency` memo, so
    /// re-proposed candidates never re-measure.
    ///
    /// # Errors
    /// Returns a [`TuningError`] when `options` is inconsistent.
    pub fn tune_observed(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
        budget: &Budget,
        observer: &mut dyn TuningObserver,
    ) -> Result<TunedModule, TuningError> {
        let mut session = self.tuning_session(def, options)?;
        let mut measurer =
            BackendMeasurer::with_context(self.backend(), def, self.generator.name(), options.seed);
        let result = session.run(&mut measurer, budget, observer);
        self.record_best(def, options.seed, &result);
        Ok(TunedModule::new(def.clone(), result, self.hardware()))
    }

    /// Runs the autotuning flow warm-started from a [`TuneLog`]: every
    /// measurement the log already contains is answered from it, so a
    /// search interrupted after *k* of *n* trials resumes for the remaining
    /// *n − k* — and, with the log's original options and seed, converges
    /// to the identical result an uninterrupted search would have found.
    ///
    /// # Errors
    /// Returns a [`TuningError`] when `options` is inconsistent.
    pub fn tune_warm(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
        log: &TuneLog,
        budget: &Budget,
        observer: &mut dyn TuningObserver,
    ) -> Result<TunedModule, TuningError> {
        let mut session = self.tuning_session(def, options)?;
        let mut inner =
            BackendMeasurer::with_context(self.backend(), def, self.generator.name(), options.seed);
        let mut measurer = WarmStartMeasurer::new(log, &mut inner);
        let result = session.run(&mut measurer, budget, observer);
        self.record_best(def, options.seed, &result);
        Ok(TunedModule::new(def.clone(), result, self.hardware()))
    }

    /// Replays a saved [`TuneLog`] straight to a [`TunedModule`] without
    /// re-searching — the "tune once, serve many" path.  The returned
    /// module carries the log's best configuration, latency and full
    /// history, exactly as the original tuning session produced them.
    pub fn replay(&self, def: &ComputeDef, log: &TuneLog) -> TunedModule {
        TunedModule::new(def.clone(), log.to_result(), self.hardware())
    }

    /// Convenience: tune, compile the best schedule and return both.
    ///
    /// # Errors
    /// Returns a [`SessionError`] for invalid options or a failing
    /// compilation of the winning configuration.
    pub fn tune_and_compile(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
    ) -> std::result::Result<(TunedModule, CompiledModule), SessionError> {
        let tuned = self.tune(def, options)?;
        let module = self.compile(tuned.best_trace(), def)?;
        Ok((tuned, module))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use atim_autotune::session::StopReason;
    use atim_autotune::TuningRecord;
    use atim_workloads::data::{generate_inputs, results_match};

    #[test]
    fn end_to_end_tune_compile_execute() {
        let session = Session::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 120, 96);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };
        let (tuned, module) = session.tune_and_compile(&def, &options).unwrap();
        assert!(tuned.best_latency_s().is_finite());
        assert!(tuned.measured() > 0);
        let inputs = generate_inputs(&def, 5);
        let run = session.execute(&module, &inputs).unwrap();
        let expect = def.reference(&inputs);
        assert!(results_match(run.output.as_ref().unwrap(), &expect, 96));
        assert!(run.report.total_s() > 0.0);
    }

    #[test]
    fn invalid_options_return_typed_errors_before_any_search() {
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .build();
        let def = ComputeDef::mtv("mtv", 64, 64);
        let err = session
            .tune(
                &def,
                &TuningOptions {
                    trials: 0,
                    ..TuningOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, TuningError::ZeroTrials);
        let err = session
            .tune(
                &def,
                &TuningOptions {
                    measure_per_round: 100,
                    population: 10,
                    ..TuningOptions::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, TuningError::MeasureExceedsPopulation { .. }));
    }

    #[test]
    fn pluggable_backend_drives_the_whole_session() {
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .build();
        assert_eq!(session.backend().name(), "analytic");
        let def = ComputeDef::mtv("mtv", 2048, 2048);
        let tuned = session.tune(&def, &TuningOptions::quick()).unwrap();
        assert!(tuned.best_latency_s().is_finite());
        // The analytic optimum rewards DPU parallelism.
        assert!(tuned.best_trace().num_dpus() >= 64);
    }

    #[test]
    fn observer_streams_one_trial_callback_per_measurement() {
        #[derive(Default)]
        struct Count {
            trials: usize,
            finish: Option<StopReason>,
        }
        impl TuningObserver for Count {
            fn on_trial(&mut self, _record: &TuningRecord) {
                self.trials += 1;
            }
            fn on_finish(&mut self, _result: &atim_autotune::TuningResult, reason: StopReason) {
                self.finish = Some(reason);
            }
        }
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .build();
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let mut obs = Count::default();
        let tuned = session
            .tune_observed(
                &def,
                &TuningOptions::quick(),
                &Budget::unlimited(),
                &mut obs,
            )
            .unwrap();
        assert_eq!(obs.trials, tuned.measured());
        assert_eq!(obs.finish, Some(StopReason::SearchComplete));
    }

    #[test]
    fn replay_reproduces_the_tuned_module_without_searching() {
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .build();
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let options = TuningOptions::quick();
        let tuned = session.tune(&def, &options).unwrap();
        let log = TuneLog::new(&def.name, options.seed, tuned.result().clone());

        let reloaded = TuneLog::from_json_str(&log.to_json_string()).unwrap();
        let replayed = session.replay(&def, &reloaded);
        assert_eq!(replayed.best_config(), tuned.best_config());
        assert_eq!(replayed.best_latency_s(), tuned.best_latency_s());
        assert_eq!(replayed.history(), tuned.history());
    }

    /// Same seed ⇒ a parallel-measuring session and a sequential one
    /// produce an identical best configuration and an identical history
    /// (same configs, same latencies, same order).  This pins the
    /// slot-indexed batch contract end-to-end, not just for one batch.
    #[test]
    fn parallel_tuning_is_deterministic_and_matches_sequential() {
        let def = ComputeDef::mtv("mtv", 96, 64);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };
        let sequential = Session::builder()
            .hardware(UpmemConfig::small())
            .measure_threads(1)
            .build()
            .tune(&def, &options)
            .unwrap();
        let parallel = Session::builder()
            .hardware(UpmemConfig::small())
            .measure_threads(4)
            .build()
            .tune(&def, &options)
            .unwrap();
        assert_eq!(sequential.best_config(), parallel.best_config());
        assert_eq!(
            sequential.history(),
            parallel.history(),
            "histories must be bit-identical"
        );
        assert_eq!(sequential.measured(), parallel.measured());
        assert_eq!(sequential.failed(), parallel.failed());
        assert_eq!(sequential.rejected(), parallel.rejected());
    }

    /// Same seed ⇒ tuning through the bytecode fast path chooses the
    /// identical schedule with identical reported latencies as the
    /// unoptimized path — the fast path only changes how fast the simulator
    /// produces each measurement.
    #[test]
    fn fastpath_tuning_is_bit_identical_to_the_slow_path() {
        use crate::backend::SimBackend;
        let def = ComputeDef::mtv("mtv", 96, 64);
        let options = TuningOptions {
            trials: 10,
            population: 10,
            measure_per_round: 5,
            ..TuningOptions::default()
        };
        let tune = |fastpath: bool| {
            let backend =
                SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 2)
                    .with_fastpath(fastpath);
            Session::builder()
                .backend(backend)
                .build()
                .tune(&def, &options)
                .unwrap()
        };
        let slow = tune(false);
        let fast = tune(true);
        assert_eq!(slow.best_config(), fast.best_config());
        assert_eq!(slow.best_latency_s(), fast.best_latency_s());
        assert_eq!(
            slow.history(),
            fast.history(),
            "histories must be bit-identical"
        );
        assert_eq!(slow.failed(), fast.failed());
        assert_eq!(slow.rejected(), fast.rejected());
    }

    /// Tuning with a cache attached persists the win; a fresh session on
    /// the same cache file resolves it with zero measurements and the
    /// identical best schedule and latency.
    #[test]
    fn cache_hits_resolve_without_measuring() {
        let path = std::env::temp_dir().join("atim_session_cache_hit_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let options = TuningOptions::quick();

        let tuned = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build()
            .tune(&def, &options)
            .unwrap();
        assert!(tuned.measured() > 0);

        let fresh = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build();
        let hit = fresh.cached(&def).expect("tuned key must hit");
        assert_eq!(hit.measured(), 0, "cache hits must not measure");
        assert!(hit.history().is_empty());
        assert_eq!(hit.best_config(), tuned.best_config());
        assert_eq!(hit.best_latency_s(), tuned.best_latency_s());

        // tune_cached on the same key is also a pure hit.
        let via_tune = fresh.tune_cached(&def, &options).unwrap();
        assert_eq!(via_tune.measured(), 0);
        assert_eq!(via_tune.best_latency_s(), tuned.best_latency_s());
        let _ = std::fs::remove_file(&path);
    }

    /// Different shapes, machines and generators occupy different cache
    /// slots: a hit for one key never leaks to a neighbouring one.
    #[test]
    fn cache_misses_on_any_differing_coordinate() {
        let path = std::env::temp_dir().join("atim_session_cache_miss_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build();
        session.tune_cached(&def, &TuningOptions::quick()).unwrap();

        // Same workload kind, different shape.
        let other_shape = ComputeDef::mtv("mtv", 512, 1024);
        assert!(session.cached(&other_shape).is_none());

        // Same shape, different machine.
        let other_machine = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::small()))
            .schedule_cache(&path)
            .build();
        assert!(other_machine.cached(&def).is_none());

        // Invalid options still fail before the cache answers.
        let err = session
            .tune_cached(
                &def,
                &TuningOptions {
                    trials: 0,
                    ..TuningOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(err, TuningError::ZeroTrials);
        let _ = std::fs::remove_file(&path);
    }

    /// A session on the tiled sketch generator tunes, records its win
    /// under the `"tiled"` cache coordinate, and a fresh session on the
    /// same generator resolves it without measuring — while the upmem
    /// generator's coordinate stays a miss (no cross-generator leakage).
    #[test]
    fn tiled_generator_sessions_cache_under_their_own_key() {
        use atim_autotune::TiledSketchGenerator;
        let path = std::env::temp_dir().join("atim_session_tiled_cache_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let options = TuningOptions::quick();

        let tuned = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .space_generator(TiledSketchGenerator::default())
            .schedule_cache(&path)
            .build()
            .tune(&def, &options)
            .unwrap();
        assert!(tuned.measured() > 0);

        let fresh = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .space_generator(TiledSketchGenerator::default())
            .schedule_cache(&path)
            .build();
        assert_eq!(fresh.cache_key(&def).generator, "tiled");
        let hit = fresh.cached(&def).expect("tuned key must hit");
        assert_eq!(hit.measured(), 0, "cache hits must not measure");
        assert_eq!(hit.best_latency_s(), tuned.best_latency_s());

        // The default (upmem) generator occupies a different slot.
        let upmem = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build();
        assert!(upmem.cached(&def).is_none());
        let _ = std::fs::remove_file(&path);
    }

    /// An entry whose generator id matches but whose trace carries a
    /// foreign decision-site skeleton (a generator-id collision) is
    /// rejected by the structure-verified lookup: a miss, never a silent
    /// re-materialization of the wrong space's trace.
    #[test]
    fn cached_rejects_structure_collisions_under_a_matching_id() {
        use atim_autotune::TiledSketchGenerator;
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .space_generator(TiledSketchGenerator::default())
            .schedule_cache_shared(Arc::new(Mutex::new(ScheduleCache::new())))
            .build();

        // Forge a collision: the tiled session's key, an upmem-skeleton
        // trace (as if a foreign generator had claimed the id "tiled").
        let foreign = UpmemSketchGenerator
            .sketches(&def, session.hardware())
            .into_iter()
            .next()
            .unwrap();
        let entry = CacheEntry {
            key: session.cache_key(&def),
            trace: foreign,
            latency_s: 1e-3,
            seed: 0,
        };
        session
            .schedule_cache()
            .unwrap()
            .lock()
            .unwrap()
            .record(entry)
            .unwrap();
        assert!(
            session.cached(&def).is_none(),
            "a colliding skeleton must be a loud miss, not a hit"
        );
    }

    /// Ridge stays the default estimator; opting into the GBDT changes the
    /// session's ranking model but tuning stays fixed-seed deterministic.
    #[test]
    fn gbdt_cost_model_tunes_deterministically() {
        assert_eq!(
            Session::default().cost_model(),
            CostModelKind::Ridge,
            "ridge must stay the default"
        );
        let def = ComputeDef::mtv("mtv", 96, 64);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };
        let tune = || {
            let session = Session::builder()
                .hardware(UpmemConfig::small())
                .cost_model(CostModelKind::Gbdt)
                .build();
            assert_eq!(session.cost_model(), CostModelKind::Gbdt);
            session.tune(&def, &options).unwrap()
        };
        let a = tune();
        let b = tune();
        assert_eq!(a.best_config(), b.best_config());
        assert_eq!(a.history(), b.history(), "histories must be bit-identical");
        assert_eq!(a.best_latency_s().to_bits(), b.best_latency_s().to_bits());
    }

    #[test]
    fn pretrained_cost_model_attaches_and_survives_reuse() {
        use atim_autotune::CostEstimator;
        use atim_model::GbdtParams;

        // A tiny pretrained model: any trained ensemble works here.
        let samples: Vec<([f64; atim_autotune::NUM_FEATURES], f64)> = (0..16)
            .map(|i| {
                let mut x = [0.0; atim_autotune::NUM_FEATURES];
                x[0] = (i % 4) as f64;
                (x, 1e-3 * (1.0 + x[0]))
            })
            .collect();
        let mut model = GbdtModel::new(GbdtParams::default());
        model.fit(&samples);
        assert!(model.is_trained());

        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .pretrained_cost_model(model)
            .build();
        assert_eq!(session.cost_model(), CostModelKind::Gbdt);
        let trees = session.pretrained_cost_model().unwrap().num_trees();

        // Two runs on different shapes both start from the same pretrained
        // model: per-run boosting must never mutate the shared copy.
        let quick = TuningOptions::quick();
        session
            .tune(&ComputeDef::mtv("mtv", 512, 512), &quick)
            .unwrap();
        session
            .tune(&ComputeDef::mtv("mtv", 1024, 256), &quick)
            .unwrap();
        assert_eq!(
            session.pretrained_cost_model().unwrap().num_trees(),
            trees,
            "runs boost private copies, not the shared pretrained model"
        );
    }

    #[test]
    fn sessions_are_cloneable_and_debuggable() {
        let session = Session::default();
        let clone = session.clone();
        assert_eq!(clone.hardware().total_dpus(), 2048);
        let dbg = format!("{session:?}");
        assert!(dbg.contains("upmem-sim"), "{dbg}");
    }
}
