//! Bridging [`Backend`]s into the autotuner's measurement interface.
//!
//! The tuning loop's cost is dominated by measurements (the paper performs
//! ~1000 per workload).  [`BackendMeasurer`] adapts a [`Backend`] to the
//! [`BatchMeasurer`] trait the tuner drives, adding the two optimizations
//! every backend benefits from:
//!
//! * **In-batch deduplication** — duplicates within one round resolve to a
//!   single backend measurement.
//! * **Cross-round memoization** — a `(config) → latency` memo persists
//!   across rounds: the evolutionary search can re-propose a configuration
//!   whose measurement previously *failed* (successes are deduplicated by
//!   the candidate database), and repeated runs over the same measurer
//!   instance skip re-measurement entirely.
//!
//! Parallelism lives *below* this layer, in
//! [`crate::backend::SimBackend::measure_batch`]: results land in
//! per-candidate slots, so the tuner observes the same latencies in the
//! same order as a sequential measurer would — tuning with the parallel
//! backend is bit-identical to tuning sequentially
//! (`parallel_tuning_is_deterministic_and_matches_sequential` in
//! `crate::session`'s tests pins this for a whole tuning run).

use std::collections::HashMap;

use atim_autotune::{
    BatchMeasurer, Cancellation, MeasureJob, MeasureOutcome, Trace, TuningOptions,
    UpmemSketchGenerator,
};
use atim_tir::compute::ComputeDef;

use crate::backend::Backend;

/// Environment variable overriding the number of measurement worker threads.
pub const THREADS_ENV: &str = "ATIM_MEASURE_THREADS";

/// Parses an `ATIM_MEASURE_THREADS` value.
///
/// # Errors
/// Rejects zero and non-numeric values with a message naming the variable
/// — misconfigured environments must fail loudly, not silently fall back
/// to a default thread count.
fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "{THREADS_ENV} must be a positive integer, got \"{raw}\" \
             (set it to 1 for sequential measurement)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{THREADS_ENV} must be a positive integer, got \"{raw}\""
        )),
    }
}

/// Number of measurement workers: `ATIM_MEASURE_THREADS` if set, otherwise
/// the machine's available parallelism.
///
/// # Panics
/// Panics with a descriptive message when `ATIM_MEASURE_THREADS` is set to
/// an invalid value (`0`, negative, or non-numeric).  An explicitly
/// misconfigured knob must never be silently ignored.
pub fn default_measure_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|msg| panic!("{msg}")),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A [`BatchMeasurer`] over a [`Backend`], with in-batch deduplication and
/// a cross-round memoization cache, both keyed on trace identity (sketch +
/// decision list).
pub struct BackendMeasurer<'a> {
    backend: &'a dyn Backend,
    def: &'a ComputeDef,
    generator: String,
    seed: u64,
    cache: HashMap<Trace, Option<f64>>,
    cache_hits: usize,
}

impl<'a> BackendMeasurer<'a> {
    /// Creates a measurer for one workload on one backend, stamping every
    /// job with the default generator id and seed.  Prefer
    /// [`BackendMeasurer::with_context`] when the session knows better (a
    /// custom generator, the actual tuning seed) — a routing backend uses
    /// that context to decide whether a worker can reproduce the
    /// measurement.
    pub fn new(backend: &'a dyn Backend, def: &'a ComputeDef) -> Self {
        Self::with_context(
            backend,
            def,
            atim_autotune::SpaceGenerator::name(&UpmemSketchGenerator),
            TuningOptions::default().seed,
        )
    }

    /// Creates a measurer that stamps each [`MeasureJob`] with the search's
    /// generator id and seed.
    pub fn with_context(
        backend: &'a dyn Backend,
        def: &'a ComputeDef,
        generator: impl Into<String>,
        seed: u64,
    ) -> Self {
        BackendMeasurer {
            backend,
            def,
            generator: generator.into(),
            seed,
            cache: HashMap::new(),
            cache_hits: 0,
        }
    }

    /// Number of distinct traces measured so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of measurements answered from the memo instead of the
    /// backend.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }
}

impl BatchMeasurer for BackendMeasurer<'_> {
    fn measure_batch(&mut self, traces: &[Trace]) -> Vec<Option<f64>> {
        // One implementation: the cancellable path with a condition that
        // never triggers (so `Skipped` is impossible).
        self.measure_batch_cancellable(traces, &Cancellation::none())
            .into_iter()
            .map(|outcome| match outcome {
                MeasureOutcome::Measured(latency) => Some(latency),
                MeasureOutcome::Failed => None,
                MeasureOutcome::Skipped => unreachable!("nothing can cancel Cancellation::none()"),
            })
            .collect()
    }

    fn measure_batch_cancellable(
        &mut self,
        traces: &[Trace],
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        // Memo answers are free and always honored; only candidates that
        // need the backend respect the cancellation.
        let mut out: Vec<Option<MeasureOutcome>> = traces
            .iter()
            .map(|c| self.cache.get(c).map(|r| MeasureOutcome::from_result(*r)))
            .collect();
        self.cache_hits += out.iter().filter(|r| r.is_some()).count();

        let mut seen: std::collections::HashSet<&Trace> =
            std::collections::HashSet::with_capacity(traces.len());
        let mut unique: Vec<usize> = Vec::new();
        for (i, trace) in traces.iter().enumerate() {
            if out[i].is_none() && seen.insert(trace) {
                unique.push(i);
            }
        }

        if !unique.is_empty() {
            // Every backend round-trips through the serializable job form:
            // in-process backends unwrap the trace again (free), while a
            // routing backend (the fleet) forwards the job to a worker.
            let jobs: Vec<MeasureJob> = unique
                .iter()
                .enumerate()
                .map(|(k, &i)| {
                    MeasureJob::timing_for_def(
                        k as u64,
                        self.def,
                        self.generator.clone(),
                        self.seed,
                        traces[i].clone(),
                    )
                })
                .collect();
            let reports = self.backend.measure_jobs(&jobs, self.def, cancel);
            assert_eq!(
                reports.len(),
                jobs.len(),
                "Backend::measure_jobs must return one report per job"
            );
            for (k, (&slot, report)) in unique.iter().zip(reports).enumerate() {
                assert_eq!(
                    report.id, k as u64,
                    "Backend::measure_jobs must echo job ids in input order"
                );
                match report.outcome {
                    MeasureOutcome::Measured(latency) => {
                        self.cache.insert(traces[slot].clone(), Some(latency));
                    }
                    MeasureOutcome::Failed => {
                        self.cache.insert(traces[slot].clone(), None);
                    }
                    // Skipped candidates stay uncached so a later round can
                    // measure them for real.
                    MeasureOutcome::Skipped => {}
                }
                out[slot] = Some(report.outcome);
            }
        }

        // In-batch duplicates follow their representative (or are skipped
        // alongside it).
        out.iter()
            .enumerate()
            .map(|(i, r)| {
                r.or_else(|| {
                    self.cache
                        .get(&traces[i])
                        .map(|c| MeasureOutcome::from_result(*c))
                })
                .unwrap_or(MeasureOutcome::Skipped)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::compiler::CompileOptions;
    use atim_sim::UpmemConfig;

    #[test]
    fn batches_fill_every_slot_in_candidate_order() {
        use atim_autotune::ScheduleConfig;
        let backend = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 3);
        let def = ComputeDef::mtv("mtv", 64, 48);
        let good_cfg = ScheduleConfig::default_for(&def, backend.hardware());
        let good = good_cfg.to_trace(&def);
        let bad = ScheduleConfig {
            spatial_dpus: vec![4096], // exceeds the 16-DPU small machine
            ..good_cfg
        }
        .to_trace(&def);
        let batch = vec![good.clone(), bad.clone(), good.clone()];
        let mut measurer = BackendMeasurer::new(&backend, &def);
        let results = measurer.measure_batch(&batch);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_some());
        assert!(results[1].is_none(), "impossible candidate must fail");
        assert_eq!(results[0], results[2]);
        // Both distinct configs (including the failure) are memoized.
        assert_eq!(measurer.cache_len(), 2);
        let hits_before = measurer.cache_hits();
        let again = measurer.measure_batch(&batch);
        assert_eq!(again, results);
        assert_eq!(measurer.cache_hits(), hits_before + 3);
    }

    #[test]
    fn thread_count_parsing_fails_loudly_on_invalid_values() {
        // The env itself is process-global, so test the parser directly.
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8), "whitespace is tolerated");
        for bad in ["0", "abc", "", "-2", "1.5"] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                err.contains(THREADS_ENV) && err.contains("positive integer"),
                "{bad:?} -> {err}"
            );
        }
        assert!(default_measure_threads() >= 1);
    }
}
