//! Batch-parallel candidate measurement on the simulated UPMEM machine.
//!
//! The tuning loop's cost is dominated by measurements (the paper performs
//! ~1000 per workload), and each measurement — compile the candidate, then
//! interpret its kernel on representative DPUs — is independent of every
//! other.  [`SimBatchMeasurer`] exploits that: each round's batch is fanned
//! out over `std::thread::scope` workers, every worker owning its own
//! `MemoryStore` (created inside `UpmemMachine::run`) while sharing the
//! immutable [`Atim`] instance.
//!
//! Results are written into per-candidate slots, so the tuner observes the
//! same latencies in the same order as a sequential measurer would — tuning
//! with the parallel measurer is bit-identical to tuning sequentially (a
//! regression test in `atim.rs` pins this).
//!
//! A `(config) → latency` memo is kept across rounds: the evolutionary
//! search can re-propose a configuration whose measurement previously
//! *failed* (successes are deduplicated by the candidate database), and
//! repeated sessions over the same measurer instance skip re-simulation
//! entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use atim_autotune::{BatchMeasurer, ScheduleConfig};
use atim_tir::compute::ComputeDef;

use crate::atim::Atim;

/// Environment variable overriding the number of measurement worker threads.
pub const THREADS_ENV: &str = "ATIM_MEASURE_THREADS";

/// Parses an `ATIM_MEASURE_THREADS` value: `0` is clamped to `1` (i.e.
/// sequential), non-numeric values are rejected.
fn parse_threads(raw: &str) -> Option<usize> {
    raw.parse::<usize>().ok().map(|n| n.max(1))
}

/// Number of measurement workers: `ATIM_MEASURE_THREADS` if set (`0` is
/// clamped to `1`, i.e. sequential), otherwise the machine's available
/// parallelism.
pub fn default_measure_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| parse_threads(&v))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A [`BatchMeasurer`] that times candidates on the simulated UPMEM machine,
/// in parallel, with a cross-round memoization cache.
pub struct SimBatchMeasurer<'a> {
    atim: &'a Atim,
    def: &'a ComputeDef,
    threads: usize,
    cache: HashMap<ScheduleConfig, Option<f64>>,
    cache_hits: usize,
}

impl<'a> SimBatchMeasurer<'a> {
    /// Creates a measurer using [`default_measure_threads`] workers.
    pub fn new(atim: &'a Atim, def: &'a ComputeDef) -> Self {
        Self::with_threads(atim, def, default_measure_threads())
    }

    /// Creates a measurer with an explicit worker count (1 = sequential).
    pub fn with_threads(atim: &'a Atim, def: &'a ComputeDef, threads: usize) -> Self {
        SimBatchMeasurer {
            atim,
            def,
            threads: threads.max(1),
            cache: HashMap::new(),
            cache_hits: 0,
        }
    }

    /// Number of worker threads this measurer fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of distinct configurations measured so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of measurements answered from the memo instead of simulation.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }
}

impl BatchMeasurer for SimBatchMeasurer<'_> {
    fn measure_batch(&mut self, configs: &[ScheduleConfig]) -> Vec<Option<f64>> {
        // Slot-indexed output: filled from the memo first, then by workers.
        let mut out: Vec<Option<Option<f64>>> =
            configs.iter().map(|c| self.cache.get(c).copied()).collect();
        self.cache_hits += out.iter().filter(|r| r.is_some()).count();

        // Distinct missing configurations, in first-occurrence order so the
        // work list (and thus the output) is deterministic.  Duplicates
        // within one batch are simulated once and fanned out to every slot.
        let mut seen: std::collections::HashSet<&ScheduleConfig> =
            std::collections::HashSet::with_capacity(configs.len());
        let mut unique: Vec<usize> = Vec::new();
        for (i, config) in configs.iter().enumerate() {
            if out[i].is_none() && seen.insert(config) {
                unique.push(i);
            }
        }

        let atim = self.atim;
        let def = self.def;
        let workers = self.threads.min(unique.len());
        let fresh: Vec<(usize, Option<f64>)> = if workers <= 1 {
            unique
                .iter()
                .map(|&i| (i, atim.measure_config(&configs[i], def)))
                .collect()
        } else {
            // Dynamic work queue: candidates vary wildly in simulation cost
            // (the Fig. 15 spread), so static chunking would leave workers
            // idle.  Each worker owns its measurement state; results carry
            // their slot index, keeping the output deterministic.
            let next = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, Option<f64>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&slot) = unique.get(k) else { break };
                                local.push((slot, atim.measure_config(&configs[slot], def)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("measurement worker panicked"))
                    .collect()
            });
            per_worker.into_iter().flatten().collect()
        };

        for (slot, result) in fresh {
            self.cache.insert(configs[slot].clone(), result);
            out[slot] = Some(result);
        }
        // Fill any remaining slots (in-batch duplicates) from the memo.
        for (i, r) in out.iter_mut().enumerate() {
            if r.is_none() {
                *r = self.cache.get(&configs[i]).copied();
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot measured"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_sim::UpmemConfig;

    #[test]
    fn batches_fill_every_slot_in_candidate_order() {
        let atim = Atim::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 64, 48);
        let good = ScheduleConfig::default_for(&def, atim.hardware());
        let bad = ScheduleConfig {
            spatial_dpus: vec![4096], // exceeds the 16-DPU small machine
            ..good.clone()
        };
        let batch = vec![good.clone(), bad.clone(), good.clone()];
        let mut measurer = SimBatchMeasurer::with_threads(&atim, &def, 3);
        let results = measurer.measure_batch(&batch);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_some());
        assert!(results[1].is_none(), "impossible candidate must fail");
        assert_eq!(results[0], results[2]);
        // Both distinct configs (including the failure) are memoized.
        assert_eq!(measurer.cache_len(), 2);
        let hits_before = measurer.cache_hits();
        let again = measurer.measure_batch(&batch);
        assert_eq!(again, results);
        assert_eq!(measurer.cache_hits(), hits_before + 3);
    }

    #[test]
    fn parallel_and_sequential_batches_agree() {
        let atim = Atim::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 96, 64);
        let base = ScheduleConfig::default_for(&def, atim.hardware());
        let batch: Vec<ScheduleConfig> = (0..6)
            .map(|i| ScheduleConfig {
                spatial_dpus: vec![1 << (i % 4)],
                tasklets: 1 + i,
                ..base.clone()
            })
            .collect();
        let seq = SimBatchMeasurer::with_threads(&atim, &def, 1).measure_batch(&batch);
        let par = SimBatchMeasurer::with_threads(&atim, &def, 4).measure_batch(&batch);
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_count_parsing_clamps_and_rejects() {
        // The env itself is process-global, so test the parser directly.
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("0"), Some(1), "0 must mean sequential");
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads(""), None);
        assert!(default_measure_threads() >= 1);
    }
}
