//! Compilation of schedules into executable modules.
//!
//! "Executable" here means a fully lowered and optimized program that the
//! simulated UPMEM machine can run: the per-DPU kernel with PIM-aware
//! optimizations applied, optimized host transfer programs, and the host
//! final-reduction loop.  On real hardware this is the stage that would emit
//! C for `dpu-upmem-dpurte-clang`; in ATiM-RS the optimized TIR itself is the
//! binary format.

use atim_autotune::{ScheduleConfig, Trace};
use atim_passes::pipeline::{optimize_kernel, optimize_transfers, OptLevel, PipelineStats};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result;
use atim_tir::schedule::{Lowered, Schedule};

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// PIM-aware optimization level for the DPU kernel (the paper's default
    /// is all three passes).
    pub opt_level: OptLevel,
    /// Whether host transfers are rewritten to the rank-parallel push path.
    pub parallel_transfer: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            opt_level: OptLevel::DmaLtBh,
            parallel_transfer: true,
        }
    }
}

/// A compiled module: the optimized lowered program plus compilation
/// statistics.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The optimized program (kernel + transfer + reduction code).
    pub lowered: Lowered,
    /// Statistics of the PIM-aware kernel passes.
    pub kernel_stats: PipelineStats,
    /// Number of transfer loops coalesced into bulk transfers.
    pub transfer_loops_coalesced: usize,
    /// Options the module was compiled with.
    pub options: CompileOptions,
}

impl CompiledModule {
    /// The computation this module implements.
    pub fn def(&self) -> &ComputeDef {
        &self.lowered.def
    }

    /// Number of DPUs the module launches.
    pub fn num_dpus(&self) -> i64 {
        self.lowered.grid.num_dpus()
    }
}

/// Compiles an explicit schedule.
///
/// # Errors
/// Propagates lowering errors (invalid schedules).
pub fn compile_schedule(schedule: &Schedule, options: CompileOptions) -> Result<CompiledModule> {
    let mut lowered = schedule.lower()?;
    let (kernel, kernel_stats) = optimize_kernel(lowered.kernel.body.clone(), options.opt_level);
    lowered.kernel.body = kernel;
    let (h2d, h2d_stats) = optimize_transfers(lowered.h2d.clone(), options.parallel_transfer);
    let (d2h, d2h_stats) = optimize_transfers(lowered.d2h.clone(), options.parallel_transfer);
    lowered.h2d = h2d;
    lowered.d2h = d2h;
    Ok(CompiledModule {
        lowered,
        kernel_stats,
        transfer_loops_coalesced: h2d_stats.loops_coalesced + d2h_stats.loops_coalesced,
        options,
    })
}

/// Applies a candidate [`Trace`] to a computation and compiles the result.
///
/// Decisions-only traces of the default UPMEM sketch (e.g. decoded from a
/// tuning log) are materialized on the fly; traces of custom generators
/// must be re-materialized by their generator first.
///
/// # Errors
/// Propagates trace application and lowering errors.
pub fn compile_trace(
    trace: &Trace,
    def: &ComputeDef,
    options: CompileOptions,
    _hw: &UpmemConfig,
) -> Result<CompiledModule> {
    let schedule = trace.apply(def)?;
    compile_schedule(&schedule, options)
}

/// Compiles a knob-vector configuration — the convenience entry point for
/// fixed baseline configs (PrIM, SimplePIM), routed through the
/// `ScheduleConfig → Trace` conversion.
///
/// # Errors
/// Propagates instantiation and lowering errors.
pub fn compile_config(
    config: &ScheduleConfig,
    def: &ComputeDef,
    options: CompileOptions,
    hw: &UpmemConfig,
) -> Result<CompiledModule> {
    compile_trace(&config.to_trace(def), def, options, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::schedule::execute_functional;
    use atim_workloads::data::{generate_inputs, results_match};

    fn sample_config() -> ScheduleConfig {
        ScheduleConfig {
            spatial_dpus: vec![8],
            reduce_dpus: 2,
            tasklets: 4,
            cache_elems: 16,
            use_cache: true,
            unroll: true,
            host_threads: 4,
            parallel_transfer: true,
        }
    }

    #[test]
    fn compiled_module_is_functionally_correct_at_every_opt_level() {
        let def = ComputeDef::mtv("mtv", 70, 90);
        let inputs = generate_inputs(&def, 3);
        let expect = def.reference(&inputs);
        for level in OptLevel::ALL {
            let options = CompileOptions {
                opt_level: level,
                parallel_transfer: true,
            };
            let module =
                compile_config(&sample_config(), &def, options, &UpmemConfig::default()).unwrap();
            let got = execute_functional(&module.lowered, &inputs).unwrap();
            assert!(
                results_match(&got, &expect, 90),
                "mismatch at opt level {level}"
            );
        }
    }

    #[test]
    fn higher_opt_levels_convert_copies_to_dma() {
        let def = ComputeDef::mtv("mtv", 70, 90);
        let no_opt = compile_config(
            &sample_config(),
            &def,
            CompileOptions {
                opt_level: OptLevel::NoOpt,
                parallel_transfer: true,
            },
            &UpmemConfig::default(),
        )
        .unwrap();
        let full = compile_config(
            &sample_config(),
            &def,
            CompileOptions::default(),
            &UpmemConfig::default(),
        )
        .unwrap();
        assert_eq!(no_opt.kernel_stats.dma.loops_converted, 0);
        assert!(full.kernel_stats.dma.loops_converted > 0);
        assert!(full.lowered.kernel.body.count_nodes().dmas > 0);
    }

    #[test]
    fn module_reports_shape_metadata() {
        let def = ComputeDef::mtv("mtv", 64, 64);
        let module = compile_config(
            &sample_config(),
            &def,
            CompileOptions::default(),
            &UpmemConfig::default(),
        )
        .unwrap();
        assert_eq!(module.num_dpus(), 16);
        assert_eq!(module.def().name, "mtv");
    }
}
