//! `atim-worker` — one measurement worker process of an ATiM fleet.
//!
//! A worker owns no configuration of its own: the fleet ships a serialized
//! [`BackendSpec`](atim_core::fleet::BackendSpec) in its configure
//! handshake, the worker rebuilds the backend and proves it by echoing the
//! backend fingerprint, then measures one
//! [`MeasureJob`](atim_autotune::MeasureJob) per request frame.
//!
//! Two modes:
//!
//! * `atim-worker --connect HOST:PORT` — dial into a fleet that spawned us
//!   (the [`FleetBackend::spawn`](atim_core::fleet::FleetBackend::spawn)
//!   path); exits when the fleet hangs up.
//! * `atim-worker --listen HOST:PORT` — serve fleets that attach
//!   ([`FleetBackend::attach`](atim_core::fleet::FleetBackend::attach)),
//!   one connection at a time, until killed.
//!
//! During long measurements the worker emits heartbeat frames (at the
//! cadence the fleet's configure frame requests) so a supervising fleet
//! can tell "still measuring" from "silently hung".  For chaos testing,
//! `ATIM_FLEET_FAULTS` (see [`FaultPlan`](atim_core::fleet::FaultPlan))
//! makes the worker die, stall, tear a frame or corrupt its handshake on
//! a deterministic schedule.

use std::process::ExitCode;

use atim_core::fleet::{worker_connect, worker_listen};

fn usage() -> ExitCode {
    eprintln!("usage: atim-worker --connect HOST:PORT | --listen HOST:PORT");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [mode, addr] if mode == "--connect" => worker_connect(addr),
        [mode, addr] if mode == "--listen" => worker_listen(addr),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("atim-worker: {message}");
            ExitCode::FAILURE
        }
    }
}
