//! # atim-core — the ATiM compiler and runtime for (simulated) UPMEM
//!
//! This crate ties the ATiM-RS pieces into the end-to-end flow of the
//! paper's Fig. 5: design-space generation and evolutionary search
//! (`atim-autotune`), TIR lowering (`atim-tir`), PIM-aware optimization
//! (`atim-passes`), and execution/measurement on the simulated UPMEM machine
//! (`atim-sim`).
//!
//! The central type is [`Session`]: built once per target machine (with a
//! pluggable measurement [`Backend`] — the simulator by default), it tunes,
//! compiles and executes workloads, streams tuning progress through
//! observers, and persists searches as replayable
//! [`TuneLog`](atim_autotune::log::TuneLog)s:
//!
//! ```
//! use atim_core::prelude::*;
//! use atim_tir::compute::ComputeDef;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = Session::builder()
//!     .hardware(UpmemConfig::default())
//!     .build();
//! let def = ComputeDef::mtv("mtv", 256, 256);
//!
//! // Search the joint host/kernel trace space, compile the winning trace,
//! // execute it.
//! let tuned = session.tune(&def, &TuningOptions::quick())?;
//! let module = session.compile(tuned.best_trace(), &def)?;
//! let inputs = atim_workloads::data::generate_inputs(&def, 1);
//! let run = session.execute(&module, &inputs)?;
//! assert!(run.report.total_ms() > 0.0);
//!
//! // Tune once, serve many: the search is durable and replayable.
//! let log = tuned.to_log(TuningOptions::quick().seed);
//! let replayed = session.replay(&def, &log);
//! assert_eq!(replayed.best_trace(), tuned.best_trace());
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod compiler;
pub mod fleet;
pub mod measure;
pub mod runtime;
pub mod session;
pub mod tuned;

pub use backend::{AnalyticBackend, Backend, SimBackend};
pub use compiler::{
    compile_config, compile_schedule, compile_trace, CompileOptions, CompiledModule,
};
pub use fleet::{
    backoff_delay, BackendSpec, FaultPlan, FleetBackend, FleetError, FleetOptions, FleetStats,
    WorkerState,
};
pub use measure::{default_measure_threads, BackendMeasurer};
pub use runtime::{ExecutedRun, Runtime};
pub use session::{Session, SessionBuilder, SessionError};
pub use tuned::TunedModule;

/// Commonly used re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::{
        AnalyticBackend, Backend, BackendMeasurer, BackendSpec, CompileOptions, CompiledModule,
        ExecutedRun, FleetBackend, FleetOptions, FleetStats, Session, SessionBuilder, SessionError,
        SimBackend, TunedModule,
    };
    pub use atim_autotune::log::TuneLog;
    pub use atim_autotune::session::{Budget, NullObserver, TuningError, TuningObserver};
    pub use atim_autotune::{
        resolve_generator, HardwareNativeGenerator, ScheduleConfig, SpaceGenerator,
        TiledSketchGenerator, Trace, TuningOptions, UpmemSketchGenerator, RESIDENT_GENERATOR_IDS,
        SPACE_GENERATOR_ENV,
    };
    pub use atim_passes::OptLevel;
    pub use atim_sim::{SimMode, UpmemConfig};
    pub use atim_tir::compute::ComputeDef;
    pub use atim_workloads::{Workload, WorkloadKind};
}
