//! # atim-core — the ATiM compiler and runtime for (simulated) UPMEM
//!
//! This crate ties the ATiM-RS pieces into the end-to-end flow of the
//! paper's Fig. 5: design-space generation and evolutionary search
//! (`atim-autotune`), TIR lowering (`atim-tir`), PIM-aware optimization
//! (`atim-passes`), and execution/measurement on the simulated UPMEM machine
//! (`atim-sim`).
//!
//! The central type is [`Atim`]:
//!
//! ```
//! use atim_core::Atim;
//! use atim_tir::compute::ComputeDef;
//! use atim_autotune::TuningOptions;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let atim = Atim::default();
//! let def = ComputeDef::mtv("mtv", 256, 256);
//!
//! // One-shot: autotune, compile the best schedule, and execute it.
//! let tuned = atim.autotune(&def, &TuningOptions::quick());
//! let module = atim.compile_config(tuned.best_config(), &def)?;
//! let inputs = atim_workloads::data::generate_inputs(&def, 1);
//! let run = atim.execute(&module, &inputs)?;
//! assert!(run.report.total_ms() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod compiler;
pub mod measure;
pub mod runtime;
pub mod tuned;

mod atim;

pub use atim::Atim;
pub use compiler::{compile_config, compile_schedule, CompileOptions, CompiledModule};
pub use measure::SimBatchMeasurer;
pub use runtime::{ExecutedRun, Runtime};
pub use tuned::TunedModule;

/// Commonly used re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::{
        Atim, CompileOptions, CompiledModule, ExecutedRun, SimBatchMeasurer, TunedModule,
    };
    pub use atim_autotune::{ScheduleConfig, TuningOptions};
    pub use atim_passes::OptLevel;
    pub use atim_sim::{SimMode, UpmemConfig};
    pub use atim_tir::compute::ComputeDef;
    pub use atim_workloads::{Workload, WorkloadKind};
}
