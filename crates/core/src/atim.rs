//! The legacy top-level ATiM facade, kept as a thin shim over [`Session`].

use atim_autotune::{ScheduleConfig, TuningOptions};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result;

use crate::compiler::{CompileOptions, CompiledModule};
use crate::runtime::{ExecutedRun, Runtime};
use crate::session::Session;
use crate::tuned::TunedModule;

/// The pre-`Session` entry point, retained for source compatibility.
///
/// Every method forwards to an internal [`Session`] on the default
/// simulator backend.  Migrate by replacing `Atim::new(hw)` with
/// `Session::new(hw)` (or `Session::builder()` for custom backends) and
/// `autotune(..)` with `tune(..)` — see the README migration notes for the
/// full mapping.
#[deprecated(
    since = "0.2.0",
    note = "use `Session` (`Session::builder()`) instead; see the README migration notes"
)]
#[derive(Debug, Clone, Default)]
pub struct Atim {
    session: Session,
    runtime: Runtime,
}

#[allow(deprecated)]
impl Atim {
    /// Creates an ATiM instance targeting the given machine.
    pub fn new(hw: UpmemConfig) -> Self {
        Atim {
            runtime: Runtime::new(hw.clone()),
            session: Session::new(hw),
        }
    }

    /// Creates an ATiM instance with explicit compile options.
    pub fn with_options(hw: UpmemConfig, compile_options: CompileOptions) -> Self {
        Atim {
            runtime: Runtime::new(hw.clone()),
            session: Session::with_options(hw, compile_options),
        }
    }

    /// The underlying session (the migration path off this shim).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The target machine configuration.
    pub fn hardware(&self) -> &UpmemConfig {
        self.session.hardware()
    }

    /// The compile options applied to every module.
    pub fn compile_options(&self) -> CompileOptions {
        self.session.compile_options()
    }

    /// The runtime (and its simulated machine).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Compiles a schedule configuration for a computation.
    ///
    /// # Errors
    /// Propagates schedule instantiation and lowering errors.
    pub fn compile_config(
        &self,
        config: &ScheduleConfig,
        def: &ComputeDef,
    ) -> Result<CompiledModule> {
        self.session.compile(config, def)
    }

    /// Executes a compiled module with real data.
    ///
    /// # Errors
    /// Propagates runtime errors (resource limits, bad input shapes).
    pub fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> Result<ExecutedRun> {
        self.session.execute(module, inputs)
    }

    /// Measures the end-to-end latency of a schedule configuration without
    /// moving tensor data.
    pub fn measure_config(&self, config: &ScheduleConfig, def: &ComputeDef) -> Option<f64> {
        self.session.measure(config, def)
    }

    /// Runs the full autotuning flow for a computation.
    ///
    /// # Panics
    /// Panics when `options` is inconsistent.  [`Session::tune`] returns a
    /// typed error instead.
    pub fn autotune(&self, def: &ComputeDef, options: &TuningOptions) -> TunedModule {
        self.session
            .tune(def, options)
            .unwrap_or_else(|err| panic!("Atim::autotune: {err}"))
    }

    /// Convenience: autotune, compile the best schedule and return both.
    ///
    /// # Errors
    /// Propagates compilation errors for the winning configuration.
    ///
    /// # Panics
    /// Panics when `options` is inconsistent, like [`Atim::autotune`].
    pub fn autotune_and_compile(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
    ) -> Result<(TunedModule, CompiledModule)> {
        let tuned = self.autotune(def, options);
        let module = self.compile_config(tuned.best_config(), def)?;
        Ok((tuned, module))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use atim_workloads::data::{generate_inputs, results_match};

    /// The shim must keep the documented legacy flow working verbatim.
    #[test]
    fn shim_preserves_the_legacy_end_to_end_flow() {
        let atim = Atim::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 120, 96);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };
        let (tuned, module) = atim.autotune_and_compile(&def, &options).unwrap();
        assert!(tuned.best_latency_s().is_finite());
        assert!(tuned.measured() > 0);
        let inputs = generate_inputs(&def, 5);
        let run = atim.execute(&module, &inputs).unwrap();
        let expect = def.reference(&inputs);
        assert!(results_match(run.output.as_ref().unwrap(), &expect, 96));
    }

    /// Tuning through the shim and through the session it wraps must be
    /// bit-identical: the shim adds no behaviour of its own.
    #[test]
    fn shim_and_session_produce_identical_results() {
        let atim = Atim::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 96, 64);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };
        let via_shim = atim.autotune(&def, &options);
        let via_session = atim.session().tune(&def, &options).unwrap();
        assert_eq!(via_shim.best_config(), via_session.best_config());
        assert_eq!(via_shim.history(), via_session.history());
    }

    #[test]
    fn accessors_expose_configuration() {
        let atim = Atim::default();
        assert_eq!(atim.hardware().total_dpus(), 2048);
        assert_eq!(
            atim.compile_options().opt_level,
            atim_passes::OptLevel::DmaLtBh
        );
        assert_eq!(atim.runtime().config().total_dpus(), 2048);
    }
}
