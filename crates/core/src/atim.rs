//! The top-level ATiM facade.

use atim_autotune::{tune_batch, ScheduleConfig, TuningOptions};
use atim_sim::UpmemConfig;
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result;

use crate::compiler::{compile_config, CompileOptions, CompiledModule};
use crate::measure::SimBatchMeasurer;
use crate::runtime::{ExecutedRun, Runtime};
use crate::tuned::TunedModule;

/// The ATiM compiler + autotuner + runtime for a (simulated) UPMEM system.
///
/// This is the entry point downstream users interact with: give it a
/// [`ComputeDef`] and it will search the joint host/kernel schedule space,
/// compile the winner with the PIM-aware passes, and execute it.
#[derive(Debug, Clone, Default)]
pub struct Atim {
    hw: UpmemConfig,
    compile_options: CompileOptions,
    runtime: Runtime,
}

impl Atim {
    /// Creates an ATiM instance targeting the given machine.
    pub fn new(hw: UpmemConfig) -> Self {
        Atim {
            runtime: Runtime::new(hw.clone()),
            hw,
            compile_options: CompileOptions::default(),
        }
    }

    /// Creates an ATiM instance with explicit compile options (used by the
    /// ablation benchmarks).
    pub fn with_options(hw: UpmemConfig, compile_options: CompileOptions) -> Self {
        Atim {
            runtime: Runtime::new(hw.clone()),
            hw,
            compile_options,
        }
    }

    /// The target machine configuration.
    pub fn hardware(&self) -> &UpmemConfig {
        &self.hw
    }

    /// The compile options applied to every module.
    pub fn compile_options(&self) -> CompileOptions {
        self.compile_options
    }

    /// The runtime (and its simulated machine).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Compiles a schedule configuration for a computation.
    ///
    /// # Errors
    /// Propagates schedule instantiation and lowering errors.
    pub fn compile_config(
        &self,
        config: &ScheduleConfig,
        def: &ComputeDef,
    ) -> Result<CompiledModule> {
        compile_config(config, def, self.compile_options, &self.hw)
    }

    /// Executes a compiled module with real data.
    ///
    /// # Errors
    /// Propagates runtime errors (resource limits, bad input shapes).
    pub fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> Result<ExecutedRun> {
        self.runtime.execute(module, inputs)
    }

    /// Measures the end-to-end latency of a schedule configuration without
    /// moving tensor data.  Returns `None` for configurations that fail to
    /// compile or exceed machine resources — exactly the signal the
    /// autotuner expects for bad candidates.
    pub fn measure_config(&self, config: &ScheduleConfig, def: &ComputeDef) -> Option<f64> {
        let module = self.compile_config(config, def).ok()?;
        let report = self.runtime.time(&module).ok()?;
        Some(report.total_s())
    }

    /// Runs the full autotuning flow for a computation: joint-space search
    /// with the UPMEM verifier and cost model, measuring candidates on the
    /// simulated machine.
    ///
    /// Each round's candidates are measured as one batch by a
    /// [`SimBatchMeasurer`]: fanned out across worker threads (tunable via
    /// `ATIM_MEASURE_THREADS`) with a cross-round memo of already-measured
    /// configurations.  The result is bit-identical to sequential
    /// measurement — only faster.
    pub fn autotune(&self, def: &ComputeDef, options: &TuningOptions) -> TunedModule {
        let mut measurer = SimBatchMeasurer::new(self, def);
        let result = tune_batch(def, &self.hw, options, &mut measurer);
        TunedModule::new(def.clone(), result, &self.hw)
    }

    /// Convenience: autotune, compile the best schedule and return both.
    ///
    /// # Errors
    /// Propagates compilation errors for the winning configuration.
    pub fn autotune_and_compile(
        &self,
        def: &ComputeDef,
        options: &TuningOptions,
    ) -> Result<(TunedModule, CompiledModule)> {
        let tuned = self.autotune(def, options);
        let module = self.compile_config(tuned.best_config(), def)?;
        Ok((tuned, module))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_workloads::data::{generate_inputs, results_match};

    #[test]
    fn end_to_end_autotune_compile_execute() {
        let atim = Atim::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 120, 96);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };
        let (tuned, module) = atim.autotune_and_compile(&def, &options).unwrap();
        assert!(tuned.best_latency_s().is_finite());
        assert!(tuned.measured() > 0);
        let inputs = generate_inputs(&def, 5);
        let run = atim.execute(&module, &inputs).unwrap();
        let expect = def.reference(&inputs);
        assert!(results_match(run.output.as_ref().unwrap(), &expect, 96));
        assert!(run.report.total_s() > 0.0);
    }

    /// Same seed ⇒ the parallel batch measurer and a plain sequential
    /// measurer produce an identical best configuration and an identical
    /// history (same configs, same latencies, same order).
    #[test]
    fn parallel_tuning_is_deterministic_and_matches_sequential() {
        let atim = Atim::new(UpmemConfig::small());
        let def = ComputeDef::mtv("mtv", 96, 64);
        let options = TuningOptions {
            trials: 12,
            population: 12,
            measure_per_round: 6,
            ..TuningOptions::default()
        };

        let mut sequential = |cfg: &ScheduleConfig| atim.measure_config(cfg, &def);
        let seq = atim_autotune::tune(&def, atim.hardware(), &options, &mut sequential);

        let mut parallel = SimBatchMeasurer::with_threads(&atim, &def, 4);
        let par = tune_batch(&def, atim.hardware(), &options, &mut parallel);

        assert_eq!(seq.best, par.best);
        assert_eq!(seq.history, par.history, "histories must be bit-identical");
        assert_eq!(seq.measured, par.measured);
        assert_eq!(seq.failed, par.failed);
        assert_eq!(seq.rejected, par.rejected);
    }

    #[test]
    fn measure_config_rejects_impossible_candidates() {
        let atim = Atim::new(UpmemConfig::small()); // 16 DPUs
        let def = ComputeDef::va("va", 1 << 16);
        let cfg = ScheduleConfig {
            spatial_dpus: vec![2048],
            reduce_dpus: 1,
            tasklets: 8,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 1,
            parallel_transfer: true,
        };
        assert!(atim.measure_config(&cfg, &def).is_none());
    }

    #[test]
    fn accessors_expose_configuration() {
        let atim = Atim::default();
        assert_eq!(atim.hardware().total_dpus(), 2048);
        assert_eq!(
            atim.compile_options().opt_level,
            atim_passes::OptLevel::DmaLtBh
        );
        assert_eq!(atim.runtime().config().total_dpus(), 2048);
    }
}
