//! A fault-tolerant localhost measurement fleet behind the [`Backend`]
//! trait.
//!
//! The tuning loop's wall-clock is measurement-bound; PRs 2/4 made each
//! candidate cheaper, this module makes measurement *horizontally*
//! scalable: a [`FleetBackend`] fans each round's [`MeasureJob`]s across N
//! `atim-worker` processes over the same length-prefixed JSON frames
//! ([`atim_wire`]) the tuning daemon speaks — the distributed RPC-tracker
//! design of "Learning to Optimize Tensor Programs", on `std::net` alone.
//!
//! # Determinism
//!
//! Fleet measurement is **bit-identical to sequential** for fixed seeds:
//!
//! * results land in per-job slots indexed by batch position, so the tuner
//!   observes the same latencies in the same order regardless of which
//!   worker answered first (the same slot-indexed contract as
//!   [`SimBackend`]'s thread fan-out);
//! * each worker rebuilds the *same* backend from the serialized
//!   [`BackendSpec`] and proves it by echoing the backend
//!   [`fingerprint`](Backend::fingerprint) during its handshake — a worker
//!   whose fingerprint disagrees is dropped before it measures anything;
//! * jobs a worker cannot reproduce exactly (an unknown generator, a
//!   workload whose `(name, shape)` coordinates do not round-trip to the
//!   original [`ComputeDef`]) are never dispatched: they fall back to the
//!   in-process backend, which is the ground truth.
//!
//! # Fault tolerance
//!
//! Worker death — EOF, a torn frame, or an expired job deadline — retires
//! that worker and pushes its in-flight job back to the *front* of the
//! shared queue, where a live worker picks it up.  When every worker is
//! gone the remaining jobs are measured in-process, so a fleet degrades to
//! exactly the single-process behavior instead of failing a tuning run.
//! Nothing is lost and nothing is duplicated: the trial history stays
//! dense.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use atim_autotune::json::encode_f64;
use atim_autotune::{
    Cancellation, Json, JsonCodec, JsonError, MeasureJob, MeasureOutcome, MeasureReport,
    SpaceGenerator, Trace, UpmemSketchGenerator, EXEC_TIMING,
};
use atim_passes::OptLevel;
use atim_sim::{ExecutionReport, PimTarget, UpmemConfig};
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result as TirResult;
use atim_wire::{read_frame, write_frame, WireError};
use atim_workloads::{Workload, WorkloadKind};

use crate::backend::{AnalyticBackend, Backend, SimBackend};
use crate::compiler::{CompileOptions, CompiledModule};
use crate::runtime::ExecutedRun;

/// Environment variable selecting the fleet size: unset or `0` measures
/// in-process, `N` spawns N local worker processes.
pub const WORKERS_ENV: &str = "ATIM_FLEET_WORKERS";

/// Environment variable overriding the worker binary the fleet spawns
/// (default: an `atim-worker` next to the current executable).
pub const WORKER_BIN_ENV: &str = "ATIM_WORKER_BIN";

/// Fault-injection knob for tests: a worker sleeps this many milliseconds
/// before measuring each job, widening the window in which a kill lands
/// mid-round.  Unset (the default) adds no delay.
pub const WORKER_DELAY_ENV: &str = "ATIM_WORKER_DELAY_MS";

/// How a worker process reconstructs the measuring backend, serialized
/// into the fleet's configure handshake.
///
/// The spec pins everything a measurement depends on: the backend kind,
/// the full machine configuration and the compile options.  Knobs workers
/// inherit from the environment (`ATIM_MEASURE_THREADS`,
/// `ATIM_SIM_FASTPATH`) are deliberately *not* part of the spec — both are
/// measurement-invariant (pinned by the fastpath and parallel-determinism
/// tests), and spawned workers inherit the parent's environment anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// The cycle-approximate simulator ([`SimBackend`]).
    Sim {
        /// Machine configuration.
        hw: UpmemConfig,
        /// Compile options applied to every candidate.
        options: CompileOptions,
    },
    /// The closed-form analytic model ([`AnalyticBackend`]).
    Analytic {
        /// Machine configuration.
        hw: UpmemConfig,
        /// Compile options applied to every candidate.
        options: CompileOptions,
    },
}

impl BackendSpec {
    /// A simulator spec with default compile options.
    pub fn sim(hw: UpmemConfig) -> Self {
        BackendSpec::Sim {
            hw,
            options: CompileOptions::default(),
        }
    }

    /// An analytic-model spec with default compile options.
    pub fn analytic(hw: UpmemConfig) -> Self {
        BackendSpec::Analytic {
            hw,
            options: CompileOptions::default(),
        }
    }

    /// The serialized backend-kind tag.
    fn kind(&self) -> &'static str {
        match self {
            BackendSpec::Sim { .. } => "upmem-sim",
            BackendSpec::Analytic { .. } => "analytic",
        }
    }

    /// Builds the backend this spec describes.  Called on both sides of
    /// the wire: the fleet keeps one instance as its in-process fallback,
    /// every worker builds its own — and the handshake's fingerprint
    /// comparison proves the two agree.
    pub fn build(&self) -> Box<dyn Backend> {
        match self {
            BackendSpec::Sim { hw, options } => Box::new(SimBackend::new(hw.clone(), *options)),
            BackendSpec::Analytic { hw, options } => {
                Box::new(AnalyticBackend::with_options(hw.clone(), *options))
            }
        }
    }
}

impl JsonCodec for BackendSpec {
    fn to_json(&self) -> Json {
        let (hw, options) = match self {
            BackendSpec::Sim { hw, options } | BackendSpec::Analytic { hw, options } => {
                (hw, options)
            }
        };
        Json::Obj(vec![
            ("backend".into(), Json::Str(self.kind().into())),
            ("hw".into(), hw_to_json(hw)),
            ("options".into(), compile_options_to_json(options)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let kind = json.get("backend")?.as_str()?;
        let hw = hw_from_json(json.get("hw")?)?;
        let options = compile_options_from_json(json.get("options")?)?;
        match kind {
            "upmem-sim" => Ok(BackendSpec::Sim { hw, options }),
            "analytic" => Ok(BackendSpec::Analytic { hw, options }),
            other => Err(JsonError::new(format!(
                "unknown backend kind {other:?} (expected upmem-sim or analytic)"
            ))),
        }
    }
}

fn compile_options_to_json(options: &CompileOptions) -> Json {
    Json::Obj(vec![
        (
            "opt_level".into(),
            Json::Str(options.opt_level.label().into()),
        ),
        (
            "parallel_transfer".into(),
            Json::Bool(options.parallel_transfer),
        ),
    ])
}

fn compile_options_from_json(json: &Json) -> Result<CompileOptions, JsonError> {
    let label = json.get("opt_level")?.as_str()?;
    let opt_level = OptLevel::ALL
        .iter()
        .copied()
        .find(|level| level.label() == label)
        .ok_or_else(|| JsonError::new(format!("unknown opt level {label:?}")))?;
    Ok(CompileOptions {
        opt_level,
        parallel_transfer: json.get("parallel_transfer")?.as_bool()?,
    })
}

fn hw_to_json(hw: &UpmemConfig) -> Json {
    let int = |v: usize| Json::Int(v as i64);
    let int64 = |v: u64| Json::Int(v as i64);
    Json::Obj(vec![
        ("target".into(), Json::Str("upmem".into())),
        ("ranks".into(), int(hw.ranks)),
        ("dpus_per_rank".into(), int(hw.dpus_per_rank)),
        ("max_tasklets".into(), int(hw.max_tasklets)),
        ("wram_bytes".into(), int(hw.wram_bytes)),
        ("iram_bytes".into(), int(hw.iram_bytes)),
        ("mram_bytes".into(), int(hw.mram_bytes)),
        ("dpu_freq_hz".into(), encode_f64(hw.dpu_freq_hz)),
        ("issue_interval".into(), int64(hw.issue_interval)),
        ("dma_setup_cycles".into(), int64(hw.dma_setup_cycles)),
        (
            "dma_bytes_per_cycle".into(),
            encode_f64(hw.dma_bytes_per_cycle),
        ),
        ("branch_instrs".into(), int64(hw.branch_instrs)),
        ("loop_iter_instrs".into(), int64(hw.loop_iter_instrs)),
        (
            "transfer_call_overhead_s".into(),
            encode_f64(hw.transfer_call_overhead_s),
        ),
        ("h2d_rank_bw".into(), encode_f64(hw.h2d_rank_bw)),
        ("d2h_rank_bw".into(), encode_f64(hw.d2h_rank_bw)),
        (
            "serial_transfer_bw".into(),
            encode_f64(hw.serial_transfer_bw),
        ),
        ("host_cores".into(), int(hw.host_cores)),
        ("host_mem_bw".into(), encode_f64(hw.host_mem_bw)),
        ("host_thread_bw".into(), encode_f64(hw.host_thread_bw)),
        ("host_core_flops".into(), encode_f64(hw.host_core_flops)),
        ("launch_overhead_s".into(), encode_f64(hw.launch_overhead_s)),
    ])
}

fn hw_from_json(json: &Json) -> Result<UpmemConfig, JsonError> {
    let target = json.get("target")?.as_str()?;
    if target != "upmem" {
        return Err(JsonError::new(format!(
            "unknown PIM target {target:?} (only upmem is implemented)"
        )));
    }
    let int = |field: &str| -> Result<usize, JsonError> { Ok(json.get(field)?.as_i64()? as usize) };
    let int64 = |field: &str| -> Result<u64, JsonError> { Ok(json.get(field)?.as_i64()? as u64) };
    let float = |field: &str| -> Result<f64, JsonError> { json.get(field)?.as_f64() };
    Ok(UpmemConfig {
        target: PimTarget::Upmem,
        ranks: int("ranks")?,
        dpus_per_rank: int("dpus_per_rank")?,
        max_tasklets: int("max_tasklets")?,
        wram_bytes: int("wram_bytes")?,
        iram_bytes: int("iram_bytes")?,
        mram_bytes: int("mram_bytes")?,
        dpu_freq_hz: float("dpu_freq_hz")?,
        issue_interval: int64("issue_interval")?,
        dma_setup_cycles: int64("dma_setup_cycles")?,
        dma_bytes_per_cycle: float("dma_bytes_per_cycle")?,
        branch_instrs: int64("branch_instrs")?,
        loop_iter_instrs: int64("loop_iter_instrs")?,
        transfer_call_overhead_s: float("transfer_call_overhead_s")?,
        h2d_rank_bw: float("h2d_rank_bw")?,
        d2h_rank_bw: float("d2h_rank_bw")?,
        serial_transfer_bw: float("serial_transfer_bw")?,
        host_cores: int("host_cores")?,
        host_mem_bw: float("host_mem_bw")?,
        host_thread_bw: float("host_thread_bw")?,
        host_core_flops: float("host_core_flops")?,
        launch_overhead_s: float("launch_overhead_s")?,
    })
}

/// Worker-pool observability counters, surfaced through
/// [`Backend::fleet_stats`] and the tuning daemon's stats reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers currently believed alive.
    pub workers_alive: usize,
    /// Jobs dispatched to a worker and not yet answered.
    pub jobs_in_flight: usize,
    /// Jobs re-queued after their worker died (cumulative).
    pub jobs_requeued: usize,
}

/// Knobs for [`FleetBackend::spawn`] / [`FleetBackend::attach`].
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Deadline for one dispatched job (write + measure + reply).  A
    /// worker missing it is treated as dead and its job re-queued; size it
    /// for the slowest single candidate, not the whole round.
    pub job_timeout: Duration,
    /// Deadline for a spawned worker to connect and complete its
    /// configure handshake.
    pub connect_timeout: Duration,
    /// Override for the worker command line: `(program, args)`, where
    /// every occurrence of `{addr}` in an argument is replaced by the
    /// fleet's listen address.  Tests use this to re-invoke the current
    /// test binary; `None` runs `atim-worker --connect {addr}` with the
    /// binary resolved next to the current executable (or from
    /// `ATIM_WORKER_BIN`).
    pub command: Option<(PathBuf, Vec<String>)>,
    /// Extra environment variables for spawned workers, with the same
    /// `{addr}` substitution in values.
    pub envs: Vec<(String, String)>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            job_timeout: Duration::from_secs(300),
            connect_timeout: Duration::from_secs(10),
            command: None,
            envs: Vec::new(),
        }
    }
}

/// Parses `ATIM_FLEET_WORKERS`: `None` when unset or `0` (measure
/// in-process), `Some(n)` to run an n-worker fleet.
///
/// # Panics
/// Panics with a descriptive message on non-numeric values — an explicitly
/// misconfigured knob must never be silently ignored.
pub fn workers_from_env() -> Option<usize> {
    let raw = std::env::var(WORKERS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(_) => panic!(
            "{WORKERS_ENV} must be a non-negative integer, got \"{raw}\" \
             (0 or unset measures in-process)"
        ),
    }
}

/// Locates the `atim-worker` binary: `ATIM_WORKER_BIN` when set, otherwise
/// a sibling of the current executable (searching the executable's
/// directory and its parent, which covers `target/<profile>/`,
/// `target/<profile>/deps/` and `target/<profile>/examples/`).
fn resolve_worker_bin() -> io::Result<PathBuf> {
    if let Ok(path) = std::env::var(WORKER_BIN_ENV) {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe()?;
    let name = format!("atim-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        // Test and example binaries live one or two levels below the
        // profile directory that holds the worker bin.
        if d.file_name().is_some_and(|n| n == "target") {
            break;
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!(
            "no atim-worker binary next to {} (build it with \
             `cargo build -p atim-core --bin atim-worker`, or set {WORKER_BIN_ENV})",
            exe.display()
        ),
    ))
}

/// One live worker connection (configured and fingerprint-verified).
struct WorkerConn {
    stream: TcpStream,
    index: usize,
}

/// Why a dispatched job came back without an outcome.
enum DispatchError {
    /// The worker is gone (EOF, torn frame, timeout, protocol violation):
    /// re-queue the job, retire the worker.
    Dead(WireError),
    /// The worker refused this job (it cannot reproduce it): measure it
    /// in-process, keep the worker.
    Refused(String),
}

/// A [`Backend`] that fans measurement jobs across local worker processes.
///
/// Everything except measurement — compilation, timing of an explicit
/// module, functional execution, the cache fingerprint — delegates to the
/// in-process backend built from the same [`BackendSpec`], so a fleet
/// session is a drop-in replacement for a sequential one (including shared
/// schedule-cache keys).
pub struct FleetBackend {
    inner: Box<dyn Backend>,
    spec: BackendSpec,
    generator: String,
    options: FleetOptions,
    pool: Mutex<Vec<WorkerConn>>,
    children: Mutex<Vec<Child>>,
    alive: AtomicUsize,
    in_flight: AtomicUsize,
    requeued: AtomicUsize,
}

impl std::fmt::Debug for FleetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetBackend")
            .field("inner", &self.inner.name())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FleetBackend {
    /// Spawns `workers` local worker processes and hands each the spec
    /// over a configure handshake.  Workers that fail to spawn, connect in
    /// time, or echo the expected backend fingerprint are dropped with a
    /// diagnostic on stderr; the fleet proceeds with the survivors (zero
    /// survivors = in-process measurement).
    ///
    /// # Errors
    /// Fails only when the listener cannot bind or the worker binary
    /// cannot be resolved — a *degraded* fleet is not an error, an
    /// unlaunchable one is.
    pub fn spawn(spec: BackendSpec, workers: usize, options: FleetOptions) -> io::Result<Self> {
        let fleet = Self::empty(spec, options);
        if workers == 0 {
            return Ok(fleet);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let (program, args) = match &fleet.options.command {
            Some((program, args)) => (program.clone(), args.clone()),
            None => (
                resolve_worker_bin()?,
                vec!["--connect".to_string(), "{addr}".to_string()],
            ),
        };
        let substitute = |s: &str| s.replace("{addr}", &addr.to_string());
        let mut children = Vec::new();
        for _ in 0..workers {
            let mut command = Command::new(&program);
            command
                .args(args.iter().map(|a| substitute(a)))
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            for (key, value) in &fleet.options.envs {
                command.env(key, substitute(value));
            }
            match command.spawn() {
                Ok(child) => children.push(child),
                Err(e) => eprintln!("atim-fleet: failed to spawn worker: {e}"),
            }
        }
        let spawned = children.len();
        *fleet.children.lock().unwrap() = children;

        // Accept and handshake each worker under one overall deadline.
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + fleet.options.connect_timeout;
        let mut pool = Vec::new();
        while pool.len() < spawned && Instant::now() < deadline {
            match listener.accept() {
                Ok((stream, _)) => {
                    let index = pool.len();
                    match fleet.handshake(stream, index) {
                        Ok(conn) => pool.push(conn),
                        Err(e) => eprintln!("atim-fleet: worker {index} rejected: {e}"),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        if pool.len() < spawned {
            eprintln!(
                "atim-fleet: only {}/{spawned} workers connected within {:?}; \
                 continuing degraded",
                pool.len(),
                fleet.options.connect_timeout
            );
        }
        fleet.alive.store(pool.len(), Ordering::Relaxed);
        *fleet.pool.lock().unwrap() = pool;
        Ok(fleet)
    }

    /// Attaches to already-running workers listening on `addrs` (started
    /// with `atim-worker --listen`), configuring each with the spec.
    ///
    /// # Errors
    /// Fails when a worker cannot be reached or rejects the handshake —
    /// explicitly named workers are expected to exist.
    pub fn attach(
        spec: BackendSpec,
        addrs: &[SocketAddr],
        options: FleetOptions,
    ) -> io::Result<Self> {
        let fleet = Self::empty(spec, options);
        let mut pool = Vec::new();
        for (index, addr) in addrs.iter().enumerate() {
            let stream = TcpStream::connect_timeout(addr, fleet.options.connect_timeout)?;
            let conn = fleet
                .handshake(stream, index)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            pool.push(conn);
        }
        fleet.alive.store(pool.len(), Ordering::Relaxed);
        *fleet.pool.lock().unwrap() = pool;
        Ok(fleet)
    }

    /// Builds a fleet from the `ATIM_FLEET_WORKERS` environment knob:
    /// `None` when the knob is unset or `0` (callers should use their
    /// in-process backend directly).
    ///
    /// # Panics
    /// Panics when the knob is set but the fleet cannot launch (bad value,
    /// missing worker binary, unbindable listener) — an explicitly
    /// requested fleet must never silently degrade to nothing at startup.
    pub fn from_env(spec: BackendSpec) -> Option<Self> {
        let workers = workers_from_env()?;
        Some(
            Self::spawn(spec, workers, FleetOptions::default()).unwrap_or_else(|e| {
                panic!("{WORKERS_ENV}={workers}: failed to launch the measurement fleet: {e}")
            }),
        )
    }

    fn empty(spec: BackendSpec, options: FleetOptions) -> Self {
        FleetBackend {
            inner: spec.build(),
            spec,
            generator: SpaceGenerator::name(&UpmemSketchGenerator).to_string(),
            options,
            pool: Mutex::new(Vec::new()),
            children: Mutex::new(Vec::new()),
            alive: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            requeued: AtomicUsize::new(0),
        }
    }

    /// Sends the configure frame and verifies the worker's fingerprint
    /// matches the in-process backend's — the proof that the worker
    /// rebuilt an identical machine.
    fn handshake(&self, mut stream: TcpStream, index: usize) -> Result<WorkerConn, String> {
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.options.connect_timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.options.connect_timeout))
            .map_err(|e| e.to_string())?;
        let configure = Json::Obj(vec![
            ("type".into(), Json::Str("configure".into())),
            ("generator".into(), Json::Str(self.generator.clone())),
            ("spec".into(), self.spec.to_json()),
        ]);
        write_frame(&mut stream, &configure).map_err(|e| e.to_string())?;
        let reply = read_frame(&mut stream).map_err(|e| e.to_string())?;
        match reply.get("type").and_then(|t| t.as_str()) {
            Ok("ready") => {
                let fingerprint = reply
                    .get("fingerprint")
                    .and_then(|f| f.as_str())
                    .map_err(|e| e.to_string())?;
                let expected = self.inner.fingerprint();
                if fingerprint != expected {
                    return Err(format!(
                        "worker fingerprint {fingerprint} does not match {expected} \
                         — refusing to mix measurements from different machines"
                    ));
                }
                Ok(WorkerConn { stream, index })
            }
            Ok("error") => Err(reply
                .get("message")
                .and_then(|m| m.as_str())
                .unwrap_or("unspecified worker error")
                .to_string()),
            _ => Err(format!("unexpected handshake reply: {reply:?}")),
        }
    }

    /// Current worker-pool counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            workers_alive: self.alive.load(Ordering::Relaxed),
            jobs_in_flight: self.in_flight.load(Ordering::Relaxed),
            jobs_requeued: self.requeued.load(Ordering::Relaxed),
        }
    }

    /// Number of workers currently believed alive.
    pub fn workers_alive(&self) -> usize {
        self.alive.load(Ordering::Relaxed)
    }

    /// Fault injection for chaos tests: SIGKILLs the `index`-th spawned
    /// worker process (spawn order).  Returns whether a process was
    /// killed.  The death is *detected* at the next dispatch to that
    /// worker, which re-queues the in-flight job — exactly the path a real
    /// worker crash takes.
    pub fn kill_worker(&self, index: usize) -> bool {
        let mut children = self.children.lock().unwrap();
        match children.get_mut(index) {
            Some(child) => {
                let killed = child.kill().is_ok();
                let _ = child.wait();
                killed
            }
            None => false,
        }
    }

    /// Whether a job can be reproduced bit-identically by a worker that
    /// only receives the job's serialized form.
    fn remotable(&self, job: &MeasureJob, def: &ComputeDef) -> bool {
        job.exec == EXEC_TIMING
            && job.generator == self.generator
            && WorkloadKind::parse(&job.workload)
                .map(|kind| Workload::new(kind, job.shape.clone()))
                .and_then(|w| w.try_compute_def())
                .is_some_and(|resolved| resolved == *def)
    }

    /// Sends one job and waits for its report.
    fn dispatch(
        &self,
        conn: &mut WorkerConn,
        job: &MeasureJob,
    ) -> Result<MeasureOutcome, DispatchError> {
        conn.stream
            .set_read_timeout(Some(self.options.job_timeout))
            .map_err(|e| DispatchError::Dead(WireError::Io(e)))?;
        conn.stream
            .set_write_timeout(Some(self.options.job_timeout))
            .map_err(|e| DispatchError::Dead(WireError::Io(e)))?;
        let frame = Json::Obj(vec![
            ("type".into(), Json::Str("job".into())),
            ("job".into(), job.to_json()),
        ]);
        write_frame(&mut conn.stream, &frame).map_err(DispatchError::Dead)?;
        let reply = read_frame(&mut conn.stream).map_err(DispatchError::Dead)?;
        match reply.get("type").and_then(|t| t.as_str()) {
            Ok("report") => {
                let report = reply
                    .get("report")
                    .and_then(MeasureReport::from_json)
                    .map_err(|e| DispatchError::Dead(WireError::Parse(e)))?;
                if report.id != job.id {
                    return Err(DispatchError::Dead(WireError::Parse(JsonError::new(
                        format!("report id {} answers a different job {}", report.id, job.id),
                    ))));
                }
                Ok(report.outcome)
            }
            Ok("refused") => Err(DispatchError::Refused(
                reply
                    .get("message")
                    .and_then(|m| m.as_str())
                    .unwrap_or("unspecified refusal")
                    .to_string(),
            )),
            _ => Err(DispatchError::Dead(WireError::Parse(JsonError::new(
                format!("unexpected worker reply: {reply:?}"),
            )))),
        }
    }

    /// Runs one worker's dispatch loop over the shared queue.  Returns the
    /// connection for re-pooling, or `None` when the worker died (its
    /// in-flight job is already back at the front of the queue).
    fn worker_round(
        &self,
        mut conn: WorkerConn,
        jobs: &[MeasureJob],
        pending: &Mutex<VecDeque<usize>>,
        results: &Mutex<Vec<Option<MeasureOutcome>>>,
        refused: &Mutex<Vec<usize>>,
        cancel: &Cancellation,
    ) -> Option<WorkerConn> {
        loop {
            if cancel.cancelled() {
                return Some(conn);
            }
            let index = pending.lock().unwrap().pop_front();
            let Some(index) = index else {
                return Some(conn);
            };
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            let outcome = self.dispatch(&mut conn, &jobs[index]);
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(outcome) => {
                    results.lock().unwrap()[index] = Some(outcome);
                }
                Err(DispatchError::Refused(message)) => {
                    eprintln!(
                        "atim-fleet: worker {} refused job {} ({message}); \
                         measuring in-process",
                        conn.index, jobs[index].id
                    );
                    refused.lock().unwrap().push(index);
                }
                Err(DispatchError::Dead(e)) => {
                    eprintln!(
                        "atim-fleet: worker {} died ({e}); re-queueing job {}",
                        conn.index, jobs[index].id
                    );
                    pending.lock().unwrap().push_front(index);
                    self.requeued.fetch_add(1, Ordering::Relaxed);
                    self.alive.fetch_sub(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
    }
}

impl Drop for FleetBackend {
    fn drop(&mut self) {
        // Ask nicely first: a shutdown frame lets workers exit cleanly.
        for conn in self.pool.get_mut().unwrap().iter_mut() {
            let shutdown = Json::Obj(vec![("type".into(), Json::Str("shutdown".into()))]);
            let _ = conn
                .stream
                .set_write_timeout(Some(Duration::from_millis(200)));
            let _ = write_frame(&mut conn.stream, &shutdown);
        }
        self.pool.get_mut().unwrap().clear();
        for child in self.children.get_mut().unwrap().iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Backend for FleetBackend {
    fn name(&self) -> &str {
        "fleet"
    }

    fn hardware(&self) -> &UpmemConfig {
        self.inner.hardware()
    }

    /// Delegates to the in-process backend: a fleet produces the *same*
    /// latencies as its inner backend (that is the whole contract), so it
    /// must share schedule-cache entries with sequential sessions instead
    /// of fragmenting the cache by worker topology.
    fn fingerprint(&self) -> String {
        self.inner.fingerprint()
    }

    fn compile_options(&self) -> CompileOptions {
        self.inner.compile_options()
    }

    fn time(&self, module: &CompiledModule) -> TirResult<ExecutionReport> {
        self.inner.time(module)
    }

    fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> TirResult<ExecutedRun> {
        self.inner.execute(module, inputs)
    }

    fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        self.inner.measure(trace, def)
    }

    fn measure_batch(&self, traces: &[Trace], def: &ComputeDef) -> Vec<Option<f64>> {
        self.measure_batch_cancellable(traces, def, &Cancellation::none())
            .into_iter()
            .map(|outcome| match outcome {
                MeasureOutcome::Measured(latency) => Some(latency),
                MeasureOutcome::Failed => None,
                MeasureOutcome::Skipped => unreachable!("nothing can cancel Cancellation::none()"),
            })
            .collect()
    }

    fn measure_batch_cancellable(
        &self,
        traces: &[Trace],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        // Route raw traces through the job form so direct batch callers
        // get fleet measurement too (seed 0: provenance only).
        let jobs: Vec<MeasureJob> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                MeasureJob::timing_for_def(i as u64, def, self.generator.clone(), 0, trace.clone())
            })
            .collect();
        self.measure_jobs(&jobs, def, cancel)
            .into_iter()
            .map(|report| report.outcome)
            .collect()
    }

    fn measure_jobs(
        &self,
        jobs: &[MeasureJob],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureReport> {
        let results = Mutex::new(vec![None; jobs.len()]);
        let pending: Mutex<VecDeque<usize>> = Mutex::new(
            (0..jobs.len())
                .filter(|&i| self.remotable(&jobs[i], def))
                .collect(),
        );
        let refused: Mutex<Vec<usize>> = Mutex::new(
            (0..jobs.len())
                .filter(|&i| !self.remotable(&jobs[i], def))
                .collect(),
        );

        let conns: Vec<WorkerConn> = std::mem::take(&mut *self.pool.lock().unwrap());
        if !conns.is_empty() {
            let survivors: Vec<WorkerConn> = std::thread::scope(|scope| {
                let handles: Vec<_> = conns
                    .into_iter()
                    .map(|conn| {
                        scope.spawn(|| {
                            self.worker_round(conn, jobs, &pending, &results, &refused, cancel)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| h.join().expect("fleet dispatch thread panicked"))
                    .collect()
            });
            self.pool.lock().unwrap().extend(survivors);
        }

        // Everything the fleet could not (or no longer can) measure runs
        // on the in-process backend, in ascending slot order: leftover
        // queue entries (all workers died, or none existed), refused jobs,
        // and — via the inner backend's own cancellation check — anything
        // a fired token should skip.
        let mut local: Vec<usize> = pending.into_inner().unwrap().into_iter().collect();
        local.extend(refused.into_inner().unwrap());
        local.sort_unstable();
        if !local.is_empty() {
            let batch: Vec<MeasureJob> = local.iter().map(|&i| jobs[i].clone()).collect();
            let reports = self.inner.measure_jobs(&batch, def, cancel);
            let mut results = results.lock().unwrap();
            for (&slot, report) in local.iter().zip(reports) {
                results[slot] = Some(report.outcome);
            }
        }

        results
            .into_inner()
            .unwrap()
            .into_iter()
            .zip(jobs)
            .map(|(outcome, job)| {
                MeasureReport::new(
                    job.id,
                    outcome.expect("every fleet job must resolve to an outcome"),
                )
            })
            .collect()
    }

    fn fleet_stats(&self) -> Option<FleetStats> {
        Some(self.stats())
    }
}

/// Runs the worker side of the fleet protocol over one connection:
/// configure handshake, then a job/report loop until the fleet hangs up.
///
/// # Errors
/// Returns a message for protocol violations and unreproducible configure
/// requests; a clean disconnect (EOF between frames or an explicit
/// shutdown frame) is `Ok`.
pub fn run_worker(mut stream: TcpStream) -> Result<(), String> {
    stream.set_nodelay(true).ok();
    let configure = match read_frame(&mut stream) {
        Ok(frame) => frame,
        Err(WireError::Closed) => return Ok(()),
        Err(e) => return Err(format!("reading configure frame: {e}")),
    };
    let refuse = |stream: &mut TcpStream, message: String| -> Result<(), String> {
        let frame = Json::Obj(vec![
            ("type".into(), Json::Str("error".into())),
            ("message".into(), Json::Str(message.clone())),
        ]);
        let _ = write_frame(stream, &frame);
        Err(message)
    };
    if configure.get("type").and_then(|t| t.as_str()).ok() != Some("configure") {
        return refuse(
            &mut stream,
            format!("expected a configure frame, got {configure:?}"),
        );
    }
    let generator_id = match configure.get("generator").and_then(|g| g.as_str()) {
        Ok(id) => id.to_string(),
        Err(e) => return refuse(&mut stream, format!("configure frame: {e}")),
    };
    if generator_id != SpaceGenerator::name(&UpmemSketchGenerator) {
        return refuse(
            &mut stream,
            format!("unknown space generator {generator_id:?} (this worker knows \"upmem\")"),
        );
    }
    let generator = UpmemSketchGenerator;
    let spec = match configure.get("spec").and_then(BackendSpec::from_json) {
        Ok(spec) => spec,
        Err(e) => return refuse(&mut stream, format!("configure spec: {e}")),
    };
    let backend = spec.build();
    let ready = Json::Obj(vec![
        ("type".into(), Json::Str("ready".into())),
        ("fingerprint".into(), Json::Str(backend.fingerprint())),
    ]);
    write_frame(&mut stream, &ready).map_err(|e| format!("sending ready frame: {e}"))?;

    let delay = std::env::var(WORKER_DELAY_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .map(Duration::from_millis);

    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(format!("reading job frame: {e}")),
        };
        match frame.get("type").and_then(|t| t.as_str()) {
            Ok("shutdown") => return Ok(()),
            Ok("job") => {}
            _ => return Err(format!("unexpected fleet frame: {frame:?}")),
        }
        let job = match frame.get("job").and_then(MeasureJob::from_json) {
            Ok(job) => job,
            Err(e) => return Err(format!("undecodable job frame: {e}")),
        };
        let reply = match worker_measure(&job, backend.as_ref(), &generator, delay) {
            Ok(outcome) => Json::Obj(vec![
                ("type".into(), Json::Str("report".into())),
                (
                    "report".into(),
                    MeasureReport::new(job.id, outcome).to_json(),
                ),
            ]),
            Err(message) => Json::Obj(vec![
                ("type".into(), Json::Str("refused".into())),
                ("id".into(), Json::Int(job.id as i64)),
                ("message".into(), Json::Str(message)),
            ]),
        };
        write_frame(&mut stream, &reply).map_err(|e| format!("sending report frame: {e}"))?;
    }
}

/// Measures one job on the worker's rebuilt backend, or explains why it
/// cannot be reproduced here (the fleet then measures it in-process).
fn worker_measure(
    job: &MeasureJob,
    backend: &dyn Backend,
    generator: &dyn SpaceGenerator,
    delay: Option<Duration>,
) -> Result<MeasureOutcome, String> {
    if job.exec != EXEC_TIMING {
        return Err(format!("exec mode {:?} is not supported", job.exec));
    }
    let def = WorkloadKind::parse(&job.workload)
        .map(|kind| Workload::new(kind, job.shape.clone()))
        .and_then(|w| w.try_compute_def())
        .ok_or_else(|| {
            format!(
                "workload {}{:?} does not resolve to a computation here",
                job.workload, job.shape
            )
        })?;
    let trace = generator
        .materialize(&job.trace, &def, backend.hardware())
        .map_err(|e| format!("trace does not materialize: {e}"))?;
    if let Some(delay) = delay {
        std::thread::sleep(delay);
    }
    Ok(MeasureOutcome::from_result(backend.measure(&trace, &def)))
}

/// Dials into a fleet at `addr` and serves jobs until it hangs up — the
/// `atim-worker --connect` entry point.
///
/// # Errors
/// Returns a message for connection failures and protocol violations.
pub fn worker_connect(addr: &str) -> Result<(), String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("connecting to fleet at {addr}: {e}"))?;
    run_worker(stream)
}

/// Listens on `addr` and serves fleets one connection at a time — the
/// `atim-worker --listen` entry point (for [`FleetBackend::attach`]).
/// Each connection re-configures the worker, so one process can serve
/// fleets with different specs sequentially.
///
/// # Errors
/// Returns a message when the address cannot be bound.
pub fn worker_listen(addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                if let Err(e) = run_worker(stream) {
                    eprintln!("atim-worker: connection ended with error: {e}");
                }
            }
            Err(e) => eprintln!("atim-worker: accept failed: {e}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_specs_round_trip_and_rebuild_identical_fingerprints() {
        for spec in [
            BackendSpec::sim(UpmemConfig::small()),
            BackendSpec::analytic(UpmemConfig::default()),
            BackendSpec::Sim {
                hw: UpmemConfig::default(),
                options: CompileOptions {
                    opt_level: OptLevel::Dma,
                    parallel_transfer: false,
                },
            },
        ] {
            let text = spec.to_json().to_string();
            let decoded = BackendSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(decoded, spec);
            assert_eq!(
                decoded.build().fingerprint(),
                spec.build().fingerprint(),
                "a worker must rebuild the exact machine the fleet measures on"
            );
        }
    }

    #[test]
    fn zero_worker_fleets_measure_in_process() {
        use atim_autotune::ScheduleConfig;
        let def = ComputeDef::mtv("mtv", 64, 48);
        let fleet = FleetBackend::spawn(
            BackendSpec::analytic(UpmemConfig::small()),
            0,
            FleetOptions::default(),
        )
        .unwrap();
        let inner = AnalyticBackend::new(UpmemConfig::small());
        let trace = ScheduleConfig::default_for(&def, inner.hardware()).to_trace(&def);
        assert_eq!(
            fleet.measure_batch(std::slice::from_ref(&trace), &def),
            inner.measure_batch(&[trace], &def)
        );
        assert_eq!(fleet.stats(), FleetStats::default());
        assert_eq!(fleet.fingerprint(), inner.fingerprint());
    }

    #[test]
    fn fleet_workers_env_parses_like_the_other_knobs() {
        // The env itself is process-global; exercise the parser contract
        // through a scoped set/remove.  Invalid values are covered by the
        // panic contract (not exercised here to keep the env clean).
        assert!(workers_from_env().is_none() || std::env::var(WORKERS_ENV).is_ok());
    }

    #[test]
    fn remotability_rejects_foreign_defs_and_exec_modes() {
        let fleet = FleetBackend::spawn(
            BackendSpec::analytic(UpmemConfig::small()),
            0,
            FleetOptions::default(),
        )
        .unwrap();
        let def = ComputeDef::mtv("mtv", 64, 48);
        let trace =
            atim_autotune::ScheduleConfig::default_for(&def, fleet.hardware()).to_trace(&def);
        let good = MeasureJob::timing_for_def(0, &def, "upmem", 0, trace.clone());
        assert!(fleet.remotable(&good, &def));

        // A GEMV with a non-canonical scalar does not round-trip through
        // (name, shape) — it must never be dispatched to a worker.
        let custom = ComputeDef::gemv("gemv", 97, 103, 1.5);
        let custom_trace =
            atim_autotune::ScheduleConfig::default_for(&custom, fleet.hardware()).to_trace(&custom);
        let custom_job = MeasureJob::timing_for_def(0, &custom, "upmem", 0, custom_trace);
        assert!(!fleet.remotable(&custom_job, &custom));

        let mut functional = good.clone();
        functional.exec = "functional".into();
        assert!(!fleet.remotable(&functional, &def));

        let mut foreign_generator = good;
        foreign_generator.generator = "custom".into();
        assert!(!fleet.remotable(&foreign_generator, &def));
    }
}
