//! Pluggable measurement backends: how a [`crate::Session`] compiles, times
//! and executes candidate schedules.
//!
//! The autotuner never cares *where* a latency number comes from — the
//! paper measures on UPMEM hardware, this reproduction measures on the
//! cycle-approximate simulator, tests use a closed-form analytic model, and
//! a future deployment could measure over the network on a real PIM box.
//! [`Backend`] is that seam: everything above it (sessions, tuning drivers,
//! logs, figure harnesses) is backend-agnostic.
//!
//! Two implementations ship in-tree:
//!
//! * [`SimBackend`] — the default: compiles with the PIM-aware passes and
//!   times candidates on the simulated UPMEM machine, fanning each batch
//!   across `std::thread::scope` workers (`ATIM_MEASURE_THREADS`).
//! * [`AnalyticBackend`] — a deterministic closed-form latency model with
//!   the same optimum shape as the simulator (more DPUs/tasklets and
//!   mid-sized WRAM tiles win).  It never interprets a kernel, so tuning
//!   against it is thousands of times faster — ideal for tests and for
//!   exercising the tuning loop itself.

use std::sync::atomic::{AtomicUsize, Ordering};

use atim_autotune::{Cancellation, MeasureJob, MeasureOutcome, MeasureReport, Trace};
use atim_sim::{ExecutionReport, UpmemConfig};
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result;
use atim_tir::schedule::execute_functional;

use crate::compiler::{compile_trace, CompileOptions, CompiledModule};
use crate::measure::default_measure_threads;
use crate::runtime::{ExecutedRun, Runtime};

/// Compiles, times and executes candidate schedules for one target machine.
///
/// Implementations must be `Send + Sync`: batch measurement fans out across
/// threads, and a [`crate::Session`] can be shared or cloned freely.
pub trait Backend: Send + Sync {
    /// A short human-readable backend name (for logs and diagnostics).
    fn name(&self) -> &str;

    /// The machine this backend targets.
    fn hardware(&self) -> &UpmemConfig;

    /// A stable identity of *what produces this backend's latencies*: the
    /// backend name plus the machine-configuration fingerprint.  This is the
    /// `machine` coordinate of a schedule-cache key
    /// ([`atim_autotune::CacheKey`]) — schedules tuned on the simulator for
    /// one machine must never be served for another machine, or for the
    /// analytic model's very different latency surface.
    ///
    /// The default derives the fingerprint from [`Backend::name`] and
    /// [`Backend::hardware`]; override it only when a backend's measurements
    /// depend on state outside its `UpmemConfig` (a remote fleet would mix
    /// in its worker identity, for example).
    fn fingerprint(&self) -> String {
        format!(
            "{}/{}",
            self.name(),
            atim_autotune::machine_fingerprint(self.hardware())
        )
    }

    /// The compile options applied to every module.
    fn compile_options(&self) -> CompileOptions;

    /// Compiles one candidate trace.
    ///
    /// # Errors
    /// Propagates trace application and lowering errors.
    fn compile(&self, trace: &Trace, def: &ComputeDef) -> Result<CompiledModule> {
        compile_trace(trace, def, self.compile_options(), self.hardware())
    }

    /// Times a compiled module without moving tensor data.
    ///
    /// # Errors
    /// Fails if the module exceeds the machine's resources.
    fn time(&self, module: &CompiledModule) -> Result<ExecutionReport>;

    /// Executes a compiled module with real data.
    ///
    /// # Errors
    /// Propagates runtime errors (resource limits, bad input shapes).
    fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> Result<ExecutedRun>;

    /// Measures the end-to-end latency of one candidate, or `None` when the
    /// candidate fails to compile or run — exactly the signal the autotuner
    /// expects for bad candidates.
    fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        let module = self.compile(trace, def).ok()?;
        self.time(&module).ok().map(|r| r.total_s())
    }

    /// Measures a whole batch, one result per candidate **in input order**.
    /// The default measures sequentially; backends override this to
    /// parallelize.
    fn measure_batch(&self, traces: &[Trace], def: &ComputeDef) -> Vec<Option<f64>> {
        traces.iter().map(|c| self.measure(c, def)).collect()
    }

    /// Like [`Backend::measure_batch`], but checks `cancel` between
    /// candidates: once it triggers, the remaining slots come back as
    /// [`MeasureOutcome::Skipped`] instead of being measured.  An inert
    /// cancellation routes through [`Backend::measure_batch`], so backends
    /// that only override the plain batch keep their batching behavior.
    fn measure_batch_cancellable(
        &self,
        traces: &[Trace],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        if cancel.is_inert() {
            return self
                .measure_batch(traces, def)
                .into_iter()
                .map(MeasureOutcome::from_result)
                .collect();
        }
        traces
            .iter()
            .map(|c| {
                if cancel.cancelled() {
                    MeasureOutcome::Skipped
                } else {
                    MeasureOutcome::from_result(self.measure(c, def))
                }
            })
            .collect()
    }

    /// Measures a batch of serializable [`MeasureJob`]s, one report per job
    /// **in input order**, each echoing its job's id.
    ///
    /// This is the routable form of [`Backend::measure_batch_cancellable`]:
    /// a job carries the workload/generator/seed context a shared-nothing
    /// worker needs, so a dispatching backend (the fleet) can forward it to
    /// another process.  The default unwraps the already-materialized
    /// traces and measures in-process, which keeps every existing backend's
    /// batching, deduplication and cancellation behavior bit-identical.
    fn measure_jobs(
        &self,
        jobs: &[MeasureJob],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureReport> {
        let traces: Vec<Trace> = jobs.iter().map(|j| j.trace.clone()).collect();
        self.measure_batch_cancellable(&traces, def, cancel)
            .into_iter()
            .zip(jobs)
            .map(|(outcome, job)| MeasureReport::new(job.id, outcome))
            .collect()
    }

    /// Worker-pool observability: how many workers are alive, how many jobs
    /// are in flight, how many were re-queued after a worker died.  `None`
    /// for purely in-process backends; the fleet backend reports its pool.
    fn fleet_stats(&self) -> Option<crate::fleet::FleetStats> {
        None
    }
}

/// The default backend: the cycle-approximate UPMEM simulator.
///
/// `measure_batch` deduplicates the batch and fans distinct candidates over
/// a dynamic work queue of `std::thread::scope` workers — candidates vary
/// wildly in simulation cost (the Fig. 15 spread), so static chunking would
/// leave workers idle.  Results land in per-candidate slots, making
/// parallel measurement bit-identical to sequential measurement.
#[derive(Debug, Clone)]
pub struct SimBackend {
    hw: UpmemConfig,
    options: CompileOptions,
    runtime: Runtime,
    threads: usize,
}

impl SimBackend {
    /// Creates a simulator backend with [`default_measure_threads`] workers.
    ///
    /// # Panics
    /// Panics when `ATIM_MEASURE_THREADS` is set to an invalid value (zero
    /// or non-numeric); see [`crate::measure::default_measure_threads`].
    pub fn new(hw: UpmemConfig, options: CompileOptions) -> Self {
        Self::with_threads(hw, options, default_measure_threads())
    }

    /// Creates a simulator backend with an explicit worker count
    /// (1 = sequential).
    ///
    /// # Panics
    /// Panics when `threads` is zero — the same fail-loudly contract as
    /// the `ATIM_MEASURE_THREADS` environment knob; pass 1 for sequential
    /// measurement.
    pub fn with_threads(hw: UpmemConfig, options: CompileOptions, threads: usize) -> Self {
        assert!(
            threads > 0,
            "SimBackend measurement thread count must be positive (use 1 for sequential)"
        );
        SimBackend {
            runtime: Runtime::new(hw.clone()),
            hw,
            options,
            threads,
        }
    }

    /// Number of worker threads batches fan out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The runtime driving the simulated machine.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Returns this backend with the bytecode fast path (optimizer +
    /// timing-only loop summarizer) explicitly enabled or disabled.  The
    /// default follows the `ATIM_SIM_FASTPATH` environment knob (on unless
    /// set to `0`); both settings produce bit-identical measurements — the
    /// fast path only changes how quickly the simulator produces them.
    pub fn with_fastpath(mut self, fastpath: bool) -> Self {
        self.runtime = Runtime::with_fastpath(self.hw.clone(), fastpath);
        self
    }

    /// Whether measurements run through the optimized bytecode.
    pub fn fastpath(&self) -> bool {
        self.runtime.fastpath()
    }
}

impl Default for SimBackend {
    fn default() -> Self {
        SimBackend::new(UpmemConfig::default(), CompileOptions::default())
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &str {
        "upmem-sim"
    }

    fn hardware(&self) -> &UpmemConfig {
        &self.hw
    }

    fn compile_options(&self) -> CompileOptions {
        self.options
    }

    fn time(&self, module: &CompiledModule) -> Result<ExecutionReport> {
        self.runtime.time(module)
    }

    fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> Result<ExecutedRun> {
        self.runtime.execute(module, inputs)
    }

    fn measure_batch(&self, traces: &[Trace], def: &ComputeDef) -> Vec<Option<f64>> {
        self.measure_batch_cancellable(traces, def, &Cancellation::none())
            .into_iter()
            .map(|outcome| match outcome {
                MeasureOutcome::Measured(latency) => Some(latency),
                MeasureOutcome::Failed => None,
                MeasureOutcome::Skipped => unreachable!("nothing can cancel Cancellation::none()"),
            })
            .collect()
    }

    fn measure_batch_cancellable(
        &self,
        traces: &[Trace],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        // Distinct traces in first-occurrence order: duplicates within one
        // batch are simulated once and fanned out to every slot.
        let mut seen: std::collections::HashMap<&Trace, usize> =
            std::collections::HashMap::with_capacity(traces.len());
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(traces.len());
        for trace in traces {
            let next_id = unique.len();
            let id = *seen.entry(trace).or_insert(next_id);
            if id == next_id {
                unique.push(slot_of.len());
            }
            slot_of.push(id);
        }

        // Every worker checks the cancellation before claiming the next
        // candidate, so a wall-clock deadline or a fired token stops the
        // batch within one in-flight candidate per worker.
        let measure_one = |slot: usize| {
            if cancel.cancelled() {
                MeasureOutcome::Skipped
            } else {
                MeasureOutcome::from_result(self.measure(&traces[slot], def))
            }
        };
        let workers = self.threads.min(unique.len());
        let fresh: Vec<MeasureOutcome> = if workers <= 1 {
            unique.iter().map(|&i| measure_one(i)).collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut results: Vec<MeasureOutcome> = vec![MeasureOutcome::Skipped; unique.len()];
            let chunks: Vec<(usize, MeasureOutcome)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&slot) = unique.get(k) else { break };
                                local.push((k, measure_one(slot)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("measurement worker panicked"))
                    .collect()
            });
            for (k, result) in chunks {
                results[k] = result;
            }
            results
        };

        slot_of.into_iter().map(|id| fresh[id]).collect()
    }
}

/// A deterministic analytic latency model — the pluggable stand-in backend
/// for tests, demos and search-quality studies.
///
/// The latency formula rewards DPU and tasklet parallelism, mid-sized WRAM
/// caching tiles and hierarchical reduction, and penalizes transfer volume
/// — the same qualitative optimum as the simulator, at closed-form cost.
/// Candidates requesting more DPUs or tasklets than the machine has fail to
/// "measure", mirroring the verifier/runtime rejection path.
///
/// `compile` and `execute` remain fully functional (real lowering, real
/// functional interpretation), so a session on this backend still produces
/// correct tensors; only the *timing* is synthetic.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    hw: UpmemConfig,
    options: CompileOptions,
}

impl AnalyticBackend {
    /// Creates an analytic backend for a machine.
    pub fn new(hw: UpmemConfig) -> Self {
        AnalyticBackend {
            hw,
            options: CompileOptions::default(),
        }
    }

    /// Creates an analytic backend with explicit compile options.
    pub fn with_options(hw: UpmemConfig, options: CompileOptions) -> Self {
        AnalyticBackend { hw, options }
    }

    /// The closed-form latency of one candidate (seconds), read off the
    /// trace's decisions.
    fn latency(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        if trace.num_dpus() > self.hw.total_dpus() as i64
            || trace.tasklets() > self.hw.max_tasklets as i64
            || trace.tasklets() < 1
        {
            return None;
        }
        let work = def.total_flops() as f64;
        let dpus = trace.num_dpus() as f64;
        // The DPU pipeline saturates at 11 tasklets, as on real UPMEM parts.
        let tasklets = trace.tasklets().min(11) as f64;
        let kernel = work / (dpus * tasklets);
        let cache_penalty = if trace.use_cache() {
            1.0 + (64.0 - trace.cache_elems() as f64).abs() / 256.0
        } else {
            20.0
        };
        let reduce_bonus = if trace.uses_rfactor() { 0.7 } else { 1.0 };
        let transfer = (def.total_bytes() as f64).sqrt() / 50.0 + dpus * 0.001;
        Some((kernel * cache_penalty * reduce_bonus + transfer) * 1e-6)
    }
}

impl Backend for AnalyticBackend {
    fn name(&self) -> &str {
        "analytic"
    }

    fn hardware(&self) -> &UpmemConfig {
        &self.hw
    }

    fn compile_options(&self) -> CompileOptions {
        self.options
    }

    fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        // Closed form only: no compilation, no interpretation.  Candidates
        // whose trace cannot even apply still count as failures.
        self.latency(trace, def)
            .filter(|_| trace.apply(def).is_ok())
    }

    fn time(&self, module: &CompiledModule) -> Result<ExecutionReport> {
        // Reconstruct an approximate report from the module shape: the
        // analytic model has no per-phase breakdown, so everything lands in
        // `kernel_s`.
        let def = module.def();
        let dpus = module.num_dpus().max(1);
        let work = def.total_flops() as f64;
        let kernel_s = (work / dpus as f64 + (def.total_bytes() as f64).sqrt() / 50.0) * 1e-6;
        Ok(ExecutionReport {
            kernel_s,
            num_dpus: dpus,
            ..ExecutionReport::default()
        })
    }

    fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> Result<ExecutedRun> {
        let output = execute_functional(&module.lowered, inputs)?;
        let report = self.time(module)?;
        Ok(ExecutedRun {
            output: Some(output),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_autotune::ScheduleConfig;
    use atim_workloads::data::{generate_inputs, results_match};

    #[test]
    fn sim_backend_parallel_and_sequential_batches_agree() {
        let def = ComputeDef::mtv("mtv", 96, 64);
        let seq = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 1);
        let par = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 4);
        let base = ScheduleConfig::default_for(&def, seq.hardware());
        let batch: Vec<Trace> = (0..6)
            .map(|i| {
                ScheduleConfig {
                    spatial_dpus: vec![1 << (i % 4)],
                    tasklets: 1 + i,
                    ..base.clone()
                }
                .to_trace(&def)
            })
            .collect();
        assert_eq!(
            seq.measure_batch(&batch, &def),
            par.measure_batch(&batch, &def)
        );
    }

    #[test]
    fn sim_backend_batches_fill_every_slot_in_candidate_order() {
        let def = ComputeDef::mtv("mtv", 64, 48);
        let backend = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 3);
        let good = ScheduleConfig::default_for(&def, backend.hardware()).to_trace(&def);
        let bad = ScheduleConfig {
            spatial_dpus: vec![4096], // exceeds the 16-DPU small machine
            ..ScheduleConfig::default_for(&def, backend.hardware())
        }
        .to_trace(&def);
        let results = backend.measure_batch(&[good.clone(), bad, good], &def);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_some());
        assert!(results[1].is_none(), "impossible candidate must fail");
        assert_eq!(results[0], results[2], "duplicates share one simulation");
    }

    #[test]
    fn cancelled_batches_skip_remaining_candidates() {
        use atim_autotune::CancelToken;
        let def = ComputeDef::mtv("mtv", 64, 48);
        let backend = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 2);
        let base = ScheduleConfig::default_for(&def, backend.hardware());
        let batch: Vec<Trace> = (0..4)
            .map(|i| {
                ScheduleConfig {
                    tasklets: 1 + i,
                    ..base.clone()
                }
                .to_trace(&def)
            })
            .collect();
        // A pre-fired token skips everything.
        let token = CancelToken::new();
        token.cancel();
        let cancel = Cancellation::new(Some(token), None);
        let outcomes = backend.measure_batch_cancellable(&batch, &def, &cancel);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| *o == MeasureOutcome::Skipped));
        // No cancellation: every slot measured, matching the plain batch.
        let free = backend.measure_batch_cancellable(&batch, &def, &Cancellation::none());
        let plain = backend.measure_batch(&batch, &def);
        for (outcome, result) in free.iter().zip(plain) {
            assert_eq!(*outcome, MeasureOutcome::from_result(result));
        }
    }

    /// The fast path must not change a single measurement: identical
    /// latencies for every candidate of a batch, fastpath on vs off.
    #[test]
    fn fastpath_measurements_are_bit_identical() {
        let def = ComputeDef::mtv("mtv", 96, 64);
        let slow = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 1)
            .with_fastpath(false);
        let fast = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 1)
            .with_fastpath(true);
        assert!(!slow.fastpath());
        assert!(fast.fastpath());
        let base = ScheduleConfig::default_for(&def, slow.hardware());
        let batch: Vec<Trace> = (0..5)
            .map(|i| {
                ScheduleConfig {
                    spatial_dpus: vec![1 << (i % 4)],
                    tasklets: 1 + i,
                    cache_elems: 8 << (i % 3),
                    ..base.clone()
                }
                .to_trace(&def)
            })
            .collect();
        assert_eq!(
            slow.measure_batch(&batch, &def),
            fast.measure_batch(&batch, &def)
        );
    }

    /// The fast-path follow-up from the roadmap: misaligned shapes lower to
    /// boundary-*guarded* kernel loops, which the timing-only summarizer now
    /// accepts when the guard is monotone affine.  The measurements must
    /// stay bit-identical with the fast path on vs off, and the guarded
    /// loops must actually be marked summarizable.
    #[test]
    fn fastpath_matches_slow_path_on_misaligned_gemv_and_summarizes_guards() {
        let def = ComputeDef::gemv("gemv", 97, 103, 1.5);
        let slow = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 1)
            .with_fastpath(false);
        let fast = SimBackend::with_threads(UpmemConfig::small(), CompileOptions::default(), 1)
            .with_fastpath(true);
        let base = ScheduleConfig::default_for(&def, slow.hardware());
        // Odd tilings so every split is misaligned and boundary checks land
        // in the kernel.
        let batch: Vec<Trace> = [(4i64, 48i64), (8, 24), (2, 96), (4, 32)]
            .iter()
            .map(|&(dpus, cache)| {
                ScheduleConfig {
                    spatial_dpus: vec![dpus],
                    reduce_dpus: 2,
                    tasklets: 6,
                    cache_elems: cache,
                    ..base.clone()
                }
                .to_trace(&def)
            })
            .collect();
        let slow_results = slow.measure_batch(&batch, &def);
        let fast_results = fast.measure_batch(&batch, &def);
        assert!(slow_results.iter().any(|r| r.is_some()));
        assert_eq!(slow_results, fast_results, "fastpath must be bit-identical");

        // Without boundary-check hoisting the guards stay in the kernel —
        // and the summarizer must now accept (some of) those guarded loops.
        let unhoisted = CompileOptions {
            opt_level: atim_passes::OptLevel::NoOpt,
            parallel_transfer: true,
        };
        let module =
            crate::compiler::compile_trace(&batch[0], &def, unhoisted, slow.hardware()).unwrap();
        let counts = module.lowered.kernel.body.count_nodes();
        assert!(
            counts.branches > 0,
            "a misaligned unhoisted GEMV kernel must contain boundary guards"
        );
        let program =
            atim_tir::eval::CompiledProgram::compile(&module.lowered.kernel.body).optimize();
        assert!(
            program.summarized_loops() >= 1,
            "boundary-guarded misaligned GEMV loops must be summarizable"
        );
    }

    #[test]
    fn analytic_backend_prefers_parallelism_and_rejects_oversubscription() {
        let def = ComputeDef::mtv("mtv", 1024, 1024);
        let backend = AnalyticBackend::new(UpmemConfig::default());
        let small = ScheduleConfig {
            spatial_dpus: vec![4],
            ..ScheduleConfig::default_for(&def, backend.hardware())
        };
        let large = ScheduleConfig {
            spatial_dpus: vec![512],
            ..small.clone()
        };
        let lat_small = backend.measure(&small.to_trace(&def), &def).unwrap();
        let lat_large = backend.measure(&large.to_trace(&def), &def).unwrap();
        assert!(lat_large < lat_small, "more DPUs must be faster");

        let impossible = ScheduleConfig {
            spatial_dpus: vec![4096],
            ..small
        };
        assert!(backend.measure(&impossible.to_trace(&def), &def).is_none());
    }

    #[test]
    fn analytic_backend_still_executes_correct_tensors() {
        let def = ComputeDef::mtv("mtv", 24, 36);
        let backend = AnalyticBackend::new(UpmemConfig::default());
        let cfg = ScheduleConfig::default_for(&def, backend.hardware());
        let module = backend.compile(&cfg.to_trace(&def), &def).unwrap();
        let inputs = generate_inputs(&def, 3);
        let run = backend.execute(&module, &inputs).unwrap();
        let expect = def.reference(&inputs);
        assert!(results_match(run.output.as_ref().unwrap(), &expect, 36));
        assert!(run.report.kernel_s > 0.0);
    }
}
