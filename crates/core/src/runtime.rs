//! Execution of compiled modules on the simulated UPMEM machine.
//!
//! On a real system this layer corresponds to the TVM runtime extended with
//! UPMEM host APIs (DPU allocation, `dpu_copy_*`/`dpu_push_xfer`, kernel
//! launch and synchronization).  Here it owns a [`UpmemMachine`] and drives
//! the machine's transfer/launch/reduce sequence.

use atim_sim::{ExecutionReport, SimMode, UpmemConfig, UpmemMachine};
use atim_tir::error::Result;

use crate::compiler::CompiledModule;

/// Result of executing a compiled module.
#[derive(Debug, Clone)]
pub struct ExecutedRun {
    /// The output tensor (present when executed in [`SimMode::Full`]).
    pub output: Option<Vec<f32>>,
    /// Timing and profiling report.
    pub report: ExecutionReport,
}

/// The UPMEM runtime: owns the simulated machine.
#[derive(Debug, Clone, Default)]
pub struct Runtime {
    machine: UpmemMachine,
}

impl Runtime {
    /// Creates a runtime for a machine configuration.  The bytecode fast
    /// path (optimizer + timing-only loop summarizer) defaults from the
    /// `ATIM_SIM_FASTPATH` environment knob (on unless set to `0`).
    pub fn new(config: UpmemConfig) -> Self {
        Runtime {
            machine: UpmemMachine::new(config),
        }
    }

    /// Creates a runtime with an explicit fast-path setting.
    pub fn with_fastpath(config: UpmemConfig, fastpath: bool) -> Self {
        Runtime {
            machine: UpmemMachine::with_fastpath(config, fastpath),
        }
    }

    /// Whether modules run through the optimized bytecode.
    pub fn fastpath(&self) -> bool {
        self.machine.fastpath()
    }

    /// The machine configuration.
    pub fn config(&self) -> &UpmemConfig {
        self.machine.config()
    }

    /// Executes a module with real data, returning the output tensor and the
    /// timing report.
    ///
    /// # Errors
    /// Fails if the module exceeds the machine's resources or the inputs do
    /// not match the computation definition.
    pub fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> Result<ExecutedRun> {
        let result = self.machine.run(&module.lowered, inputs, SimMode::Full)?;
        Ok(ExecutedRun {
            output: result.output,
            report: result.report,
        })
    }

    /// Times a module without moving tensor data (used for large benchmark
    /// shapes and autotuning measurements).
    ///
    /// # Errors
    /// Fails if the module exceeds the machine's resources.
    pub fn time(&self, module: &CompiledModule) -> Result<ExecutionReport> {
        let result = self
            .machine
            .run(&module.lowered, &[], SimMode::TimingOnly)?;
        Ok(result.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_config, CompileOptions};
    use atim_autotune::ScheduleConfig;
    use atim_tir::compute::ComputeDef;
    use atim_workloads::data::{generate_inputs, results_match};

    #[test]
    fn execute_and_time_agree_on_structure() {
        let def = ComputeDef::gemv("gemv", 96, 128, 1.5);
        let cfg = ScheduleConfig {
            spatial_dpus: vec![4],
            reduce_dpus: 2,
            tasklets: 4,
            cache_elems: 32,
            use_cache: true,
            unroll: false,
            host_threads: 2,
            parallel_transfer: true,
        };
        let module = compile_config(
            &cfg,
            &def,
            CompileOptions::default(),
            &UpmemConfig::default(),
        )
        .unwrap();
        let rt = Runtime::new(UpmemConfig::small());
        let inputs = generate_inputs(&def, 11);
        let run = rt.execute(&module, &inputs).unwrap();
        let expect = def.reference(&inputs);
        assert!(results_match(run.output.as_ref().unwrap(), &expect, 128));
        let timed = rt.time(&module).unwrap();
        assert_eq!(timed.num_dpus, run.report.num_dpus);
        assert!((timed.kernel_s - run.report.kernel_s).abs() / run.report.kernel_s < 1e-6);
    }

    #[test]
    fn runtime_exposes_its_configuration() {
        let rt = Runtime::new(UpmemConfig::small());
        assert_eq!(rt.config().total_dpus(), 16);
    }
}
