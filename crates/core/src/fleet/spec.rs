//! Serializable backend specification: how a worker process reconstructs
//! the measuring backend from the fleet's configure handshake.

use atim_autotune::json::encode_f64;
use atim_autotune::{Json, JsonCodec, JsonError};
use atim_passes::OptLevel;
use atim_sim::{PimTarget, UpmemConfig};

use crate::backend::{AnalyticBackend, Backend, SimBackend};
use crate::compiler::CompileOptions;

/// How a worker process reconstructs the measuring backend, serialized
/// into the fleet's configure handshake.
///
/// The spec pins everything a measurement depends on: the backend kind,
/// the full machine configuration and the compile options.  Knobs workers
/// inherit from the environment (`ATIM_MEASURE_THREADS`,
/// `ATIM_SIM_FASTPATH`) are deliberately *not* part of the spec — both are
/// measurement-invariant (pinned by the fastpath and parallel-determinism
/// tests), and spawned workers inherit the parent's environment anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// The cycle-approximate simulator ([`SimBackend`]).
    Sim {
        /// Machine configuration.
        hw: UpmemConfig,
        /// Compile options applied to every candidate.
        options: CompileOptions,
    },
    /// The closed-form analytic model ([`AnalyticBackend`]).
    Analytic {
        /// Machine configuration.
        hw: UpmemConfig,
        /// Compile options applied to every candidate.
        options: CompileOptions,
    },
}

impl BackendSpec {
    /// A simulator spec with default compile options.
    pub fn sim(hw: UpmemConfig) -> Self {
        BackendSpec::Sim {
            hw,
            options: CompileOptions::default(),
        }
    }

    /// An analytic-model spec with default compile options.
    pub fn analytic(hw: UpmemConfig) -> Self {
        BackendSpec::Analytic {
            hw,
            options: CompileOptions::default(),
        }
    }

    /// The serialized backend-kind tag.
    fn kind(&self) -> &'static str {
        match self {
            BackendSpec::Sim { .. } => "upmem-sim",
            BackendSpec::Analytic { .. } => "analytic",
        }
    }

    /// Builds the backend this spec describes.  Called on both sides of
    /// the wire: the fleet keeps one instance as its in-process fallback,
    /// every worker builds its own — and the handshake's fingerprint
    /// comparison proves the two agree.
    pub fn build(&self) -> Box<dyn Backend> {
        match self {
            BackendSpec::Sim { hw, options } => Box::new(SimBackend::new(hw.clone(), *options)),
            BackendSpec::Analytic { hw, options } => {
                Box::new(AnalyticBackend::with_options(hw.clone(), *options))
            }
        }
    }
}

impl JsonCodec for BackendSpec {
    fn to_json(&self) -> Json {
        let (hw, options) = match self {
            BackendSpec::Sim { hw, options } | BackendSpec::Analytic { hw, options } => {
                (hw, options)
            }
        };
        Json::Obj(vec![
            ("backend".into(), Json::Str(self.kind().into())),
            ("hw".into(), hw_to_json(hw)),
            ("options".into(), compile_options_to_json(options)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let kind = json.get("backend")?.as_str()?;
        let hw = hw_from_json(json.get("hw")?)?;
        let options = compile_options_from_json(json.get("options")?)?;
        match kind {
            "upmem-sim" => Ok(BackendSpec::Sim { hw, options }),
            "analytic" => Ok(BackendSpec::Analytic { hw, options }),
            other => Err(JsonError::new(format!(
                "unknown backend kind {other:?} (expected upmem-sim or analytic)"
            ))),
        }
    }
}

fn compile_options_to_json(options: &CompileOptions) -> Json {
    Json::Obj(vec![
        (
            "opt_level".into(),
            Json::Str(options.opt_level.label().into()),
        ),
        (
            "parallel_transfer".into(),
            Json::Bool(options.parallel_transfer),
        ),
    ])
}

fn compile_options_from_json(json: &Json) -> Result<CompileOptions, JsonError> {
    let label = json.get("opt_level")?.as_str()?;
    let opt_level = OptLevel::ALL
        .iter()
        .copied()
        .find(|level| level.label() == label)
        .ok_or_else(|| JsonError::new(format!("unknown opt level {label:?}")))?;
    Ok(CompileOptions {
        opt_level,
        parallel_transfer: json.get("parallel_transfer")?.as_bool()?,
    })
}

fn hw_to_json(hw: &UpmemConfig) -> Json {
    let int = |v: usize| Json::Int(v as i64);
    let int64 = |v: u64| Json::Int(v as i64);
    Json::Obj(vec![
        ("target".into(), Json::Str("upmem".into())),
        ("ranks".into(), int(hw.ranks)),
        ("dpus_per_rank".into(), int(hw.dpus_per_rank)),
        ("max_tasklets".into(), int(hw.max_tasklets)),
        ("wram_bytes".into(), int(hw.wram_bytes)),
        ("iram_bytes".into(), int(hw.iram_bytes)),
        ("mram_bytes".into(), int(hw.mram_bytes)),
        ("dpu_freq_hz".into(), encode_f64(hw.dpu_freq_hz)),
        ("issue_interval".into(), int64(hw.issue_interval)),
        ("dma_setup_cycles".into(), int64(hw.dma_setup_cycles)),
        (
            "dma_bytes_per_cycle".into(),
            encode_f64(hw.dma_bytes_per_cycle),
        ),
        ("branch_instrs".into(), int64(hw.branch_instrs)),
        ("loop_iter_instrs".into(), int64(hw.loop_iter_instrs)),
        (
            "transfer_call_overhead_s".into(),
            encode_f64(hw.transfer_call_overhead_s),
        ),
        ("h2d_rank_bw".into(), encode_f64(hw.h2d_rank_bw)),
        ("d2h_rank_bw".into(), encode_f64(hw.d2h_rank_bw)),
        (
            "serial_transfer_bw".into(),
            encode_f64(hw.serial_transfer_bw),
        ),
        ("host_cores".into(), int(hw.host_cores)),
        ("host_mem_bw".into(), encode_f64(hw.host_mem_bw)),
        ("host_thread_bw".into(), encode_f64(hw.host_thread_bw)),
        ("host_core_flops".into(), encode_f64(hw.host_core_flops)),
        ("launch_overhead_s".into(), encode_f64(hw.launch_overhead_s)),
    ])
}

fn hw_from_json(json: &Json) -> Result<UpmemConfig, JsonError> {
    let target = json.get("target")?.as_str()?;
    if target != "upmem" {
        return Err(JsonError::new(format!(
            "unknown PIM target {target:?} (only upmem is implemented)"
        )));
    }
    let int = |field: &str| -> Result<usize, JsonError> { Ok(json.get(field)?.as_i64()? as usize) };
    let int64 = |field: &str| -> Result<u64, JsonError> { Ok(json.get(field)?.as_i64()? as u64) };
    let float = |field: &str| -> Result<f64, JsonError> { json.get(field)?.as_f64() };
    Ok(UpmemConfig {
        target: PimTarget::Upmem,
        ranks: int("ranks")?,
        dpus_per_rank: int("dpus_per_rank")?,
        max_tasklets: int("max_tasklets")?,
        wram_bytes: int("wram_bytes")?,
        iram_bytes: int("iram_bytes")?,
        mram_bytes: int("mram_bytes")?,
        dpu_freq_hz: float("dpu_freq_hz")?,
        issue_interval: int64("issue_interval")?,
        dma_setup_cycles: int64("dma_setup_cycles")?,
        dma_bytes_per_cycle: float("dma_bytes_per_cycle")?,
        branch_instrs: int64("branch_instrs")?,
        loop_iter_instrs: int64("loop_iter_instrs")?,
        transfer_call_overhead_s: float("transfer_call_overhead_s")?,
        h2d_rank_bw: float("h2d_rank_bw")?,
        d2h_rank_bw: float("d2h_rank_bw")?,
        serial_transfer_bw: float("serial_transfer_bw")?,
        host_cores: int("host_cores")?,
        host_mem_bw: float("host_mem_bw")?,
        host_thread_bw: float("host_thread_bw")?,
        host_core_flops: float("host_core_flops")?,
        launch_overhead_s: float("launch_overhead_s")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_specs_round_trip_and_rebuild_identical_fingerprints() {
        for spec in [
            BackendSpec::sim(UpmemConfig::small()),
            BackendSpec::analytic(UpmemConfig::default()),
            BackendSpec::Sim {
                hw: UpmemConfig::default(),
                options: CompileOptions {
                    opt_level: OptLevel::Dma,
                    parallel_transfer: false,
                },
            },
        ] {
            let text = spec.to_json().to_string();
            let decoded = BackendSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(decoded, spec);
            assert_eq!(
                decoded.build().fingerprint(),
                spec.build().fingerprint(),
                "a worker must rebuild the exact machine the fleet measures on"
            );
        }
    }
}
