//! Per-worker lifecycle supervision: typed health states, reconnect with
//! re-handshake, heartbeat-based hang detection, and the dispatch loop
//! that feeds jobs to one worker.
//!
//! PR 7 retired a worker on its first fault.  A supervisor instead walks
//! the worker through [`WorkerState`]: a fault marks it `Suspect`, the
//! next dispatch opportunity runs a bounded reconnect cycle
//! (`Reconnecting`, capped deterministic exponential backoff, full
//! re-handshake with fingerprint/version verification), and only an
//! exhausted cycle retires it for good.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

use atim_autotune::{
    Cancellation, Json, JsonCodec, JsonError, MeasureJob, MeasureOutcome, MeasureReport,
};
use atim_wire::{read_frame, write_frame, WireError};

use super::backoff::backoff_delay;
use super::error::{DispatchError, FleetError};
use super::{build_version, FleetBackend, PROTOCOL_VERSION};

/// A worker's position in its supervised lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Connected, handshake verified, trusted with jobs.
    Healthy,
    /// A fault was observed (EOF, torn frame, timeout, lost heartbeat,
    /// failed ping); the worker gets a reconnect cycle before its next job.
    Suspect,
    /// A reconnect cycle is in progress.
    Reconnecting,
    /// Reconnection was exhausted (or disabled); the worker is permanently
    /// out of the pool.
    Retired,
}

/// How a supervisor re-establishes its worker: respawn the child process
/// (spawned fleets) or redial a fixed address (attached fleets).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ReconnectTarget {
    /// Respawn via the fleet's stored worker command and listener.
    Spawn,
    /// Redial `atim-worker --listen` at this address.
    Attach(SocketAddr),
}

/// Owns one worker's lifecycle: its connection, its health state, and the
/// way back to a working connection when it faults.
pub(crate) struct WorkerSupervisor {
    pub(crate) index: usize,
    pub(crate) state: WorkerState,
    pub(crate) conn: Option<TcpStream>,
    pub(crate) target: ReconnectTarget,
}

impl WorkerSupervisor {
    /// A supervisor holding a verified, live connection.
    pub(crate) fn healthy(index: usize, target: ReconnectTarget, stream: TcpStream) -> Self {
        WorkerSupervisor {
            index,
            state: WorkerState::Healthy,
            conn: Some(stream),
            target,
        }
    }

    /// A supervisor whose worker is not (yet) connected; it will run a
    /// reconnect cycle before its first dispatch.
    pub(crate) fn suspect(index: usize, target: ReconnectTarget) -> Self {
        WorkerSupervisor {
            index,
            state: WorkerState::Suspect,
            conn: None,
            target,
        }
    }
}

/// Shared state of one `measure_jobs` round, seen by every supervisor.
pub(crate) struct RoundCtx<'a> {
    /// The full job batch (slot-indexed).
    pub jobs: &'a [MeasureJob],
    /// Queue of `(slot, attempt)` pairs still to dispatch.  `attempt`
    /// counts how many workers this job has already killed.
    pub pending: &'a Mutex<VecDeque<(usize, u32)>>,
    /// Slot-indexed outcomes.
    pub results: &'a Mutex<Vec<Option<MeasureOutcome>>>,
    /// Slots workers refused (measured in-process afterwards).
    pub refused: &'a Mutex<Vec<usize>>,
    /// Slots quarantined after killing too many workers (measured
    /// in-process afterwards, with bounded retries).
    pub quarantined: &'a Mutex<Vec<usize>>,
    /// Cooperative cancellation for the whole round.
    pub cancel: &'a Cancellation,
}

/// Outcome of [`FleetBackend::ensure_connected`].
enum Ensure {
    /// The existing connection is usable.
    Ready,
    /// A fresh connection was just established and re-handshaken.
    Reconnected,
    /// No connection could be established; the worker is retired (or the
    /// round was cancelled mid-cycle).
    Failed,
}

impl FleetBackend {
    /// Sends the versioned configure frame and verifies the worker's
    /// protocol version, build version and backend fingerprint.  Skew is
    /// counted in the fleet stats and reported as a typed error — a
    /// skewed worker is rejected before it measures anything.
    pub(crate) fn handshake(&self, mut stream: TcpStream) -> Result<TcpStream, FleetError> {
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.options.connect_timeout))
            .map_err(FleetError::Io)?;
        stream
            .set_write_timeout(Some(self.options.connect_timeout))
            .map_err(FleetError::Io)?;
        let configure = Json::Obj(vec![
            ("type".into(), Json::Str("configure".into())),
            ("proto".into(), Json::Int(PROTOCOL_VERSION as i64)),
            ("build".into(), Json::Str(build_version().into())),
            (
                "heartbeat_ms".into(),
                Json::Int(self.options.heartbeat_interval.as_millis() as i64),
            ),
            ("generator".into(), Json::Str(self.generator.clone())),
            ("spec".into(), self.spec.to_json()),
        ]);
        write_frame(&mut stream, &configure)?;
        let reply = read_frame(&mut stream)?;
        match reply.get("type").and_then(|t| t.as_str()) {
            Ok("ready") => {
                let proto = reply
                    .get("proto")
                    .and_then(|p| p.as_i64())
                    .unwrap_or(1) // pre-versioning workers never announced one
                    .max(0) as u64;
                if proto != PROTOCOL_VERSION {
                    self.counters.version_skews.fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::ProtocolSkew {
                        expected: PROTOCOL_VERSION,
                        got: proto,
                    });
                }
                let build = reply
                    .get("build")
                    .and_then(|b| b.as_str())
                    .map_err(|e| FleetError::Handshake(format!("ready frame: {e}")))?;
                if build != build_version() {
                    self.counters.version_skews.fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::BuildSkew {
                        expected: build_version().to_string(),
                        got: build.to_string(),
                    });
                }
                let fingerprint = reply
                    .get("fingerprint")
                    .and_then(|f| f.as_str())
                    .map_err(|e| FleetError::Handshake(format!("ready frame: {e}")))?;
                let expected = self.inner.fingerprint();
                if fingerprint != expected {
                    self.counters
                        .fingerprint_skews
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(FleetError::FingerprintSkew {
                        expected,
                        got: fingerprint.to_string(),
                    });
                }
                Ok(stream)
            }
            Ok("error") => Err(FleetError::Worker(
                reply
                    .get("message")
                    .and_then(|m| m.as_str())
                    .unwrap_or("unspecified worker error")
                    .to_string(),
            )),
            _ => Err(FleetError::Handshake(format!(
                "unexpected handshake reply: {reply:?}"
            ))),
        }
    }

    /// Records an observed worker death: drops the connection, marks the
    /// supervisor suspect, decrements the alive count.
    fn note_death(&self, sup: &mut WorkerSupervisor) {
        if sup.conn.take().is_some() {
            self.counters.alive.fetch_sub(1, Ordering::Relaxed);
        }
        sup.state = WorkerState::Suspect;
    }

    /// Permanently retires a worker.
    fn retire(&self, sup: &mut WorkerSupervisor) {
        if sup.conn.take().is_some() {
            self.counters.alive.fetch_sub(1, Ordering::Relaxed);
        }
        if sup.state != WorkerState::Retired {
            sup.state = WorkerState::Retired;
            self.counters.retired.fetch_add(1, Ordering::Relaxed);
            eprintln!("atim-fleet: worker {} retired", sup.index);
        }
    }

    /// Re-establishes a worker connection (respawn or redial) and re-runs
    /// the full configure handshake.
    fn reestablish(&self, sup: &WorkerSupervisor) -> Result<TcpStream, FleetError> {
        match sup.target {
            ReconnectTarget::Attach(addr) => {
                let stream = TcpStream::connect_timeout(&addr, self.options.connect_timeout)
                    .map_err(FleetError::Io)?;
                self.handshake(stream)
            }
            ReconnectTarget::Spawn => {
                // Serialize respawns: the shared listener cannot tell two
                // freshly spawned workers apart, so only one supervisor
                // spawns-and-accepts at a time (the backoff sleeps happen
                // outside this lock).
                let _guard = self.respawn_lock.lock().unwrap();
                if let Some(mut old) = self.children.lock().unwrap()[sup.index].take() {
                    // The old process may be stalled rather than dead.
                    let _ = old.kill();
                    let _ = old.wait();
                }
                let child = self.spawn_child().map_err(FleetError::Spawn)?;
                self.children.lock().unwrap()[sup.index] = Some(child);
                let deadline = Instant::now() + self.options.connect_timeout;
                let stream = self.accept_one(deadline)?;
                match self.handshake(stream) {
                    Ok(stream) => Ok(stream),
                    Err(e) => {
                        // A worker that failed its handshake must not linger
                        // and confuse the next accept.
                        if let Some(mut child) = self.children.lock().unwrap()[sup.index].take() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// Makes sure the supervisor holds a verified connection, running a
    /// bounded reconnect cycle (capped deterministic exponential backoff,
    /// full re-handshake) when it does not.  An exhausted cycle retires
    /// the worker.
    fn ensure_connected(&self, sup: &mut WorkerSupervisor, cancel: &Cancellation) -> Ensure {
        match sup.state {
            WorkerState::Healthy if sup.conn.is_some() => return Ensure::Ready,
            WorkerState::Retired => return Ensure::Failed,
            _ => {}
        }
        if self.options.reconnect_attempts == 0 {
            self.retire(sup);
            return Ensure::Failed;
        }
        sup.state = WorkerState::Reconnecting;
        let total = self.options.reconnect_attempts;
        for attempt in 0..total {
            let delay = backoff_delay(
                attempt,
                self.options.reconnect_backoff,
                self.options.reconnect_backoff_cap,
            );
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            if cancel.cancelled() {
                sup.state = WorkerState::Suspect;
                return Ensure::Failed;
            }
            match self.reestablish(sup) {
                Ok(stream) => {
                    sup.conn = Some(stream);
                    sup.state = WorkerState::Healthy;
                    self.counters.alive.fetch_add(1, Ordering::Relaxed);
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "atim-fleet: worker {} reconnected and re-handshook \
                         (attempt {}/{total})",
                        sup.index,
                        attempt + 1
                    );
                    return Ensure::Reconnected;
                }
                Err(e) => {
                    eprintln!(
                        "atim-fleet: worker {} reconnect attempt {}/{total} failed: {e}",
                        sup.index,
                        attempt + 1
                    );
                }
            }
        }
        self.retire(sup);
        Ensure::Failed
    }

    /// Verifies a quiet pre-existing connection with a ping/pong exchange
    /// — the cheap way to notice a worker that died *between* rounds
    /// before trusting it with a job.
    fn ping(&self, sup: &mut WorkerSupervisor) -> Result<(), FleetError> {
        let stream = sup.conn.as_mut().expect("ping requires a connection");
        let window = self
            .options
            .heartbeat_window
            .max(self.options.heartbeat_interval);
        stream
            .set_write_timeout(Some(window))
            .map_err(FleetError::Io)?;
        stream
            .set_read_timeout(Some(window))
            .map_err(FleetError::Io)?;
        let nonce = self.ping_seq.fetch_add(1, Ordering::Relaxed) as i64;
        let ping = Json::Obj(vec![
            ("type".into(), Json::Str("ping".into())),
            ("nonce".into(), Json::Int(nonce)),
        ]);
        write_frame(stream, &ping)?;
        let reply = read_frame(stream)?;
        match reply.get("type").and_then(|t| t.as_str()) {
            Ok("pong") => {
                let got = reply.get("nonce").and_then(|n| n.as_i64()).unwrap_or(-1);
                if got == nonce {
                    Ok(())
                } else {
                    Err(FleetError::Handshake(format!(
                        "pong nonce {got} does not answer ping {nonce}"
                    )))
                }
            }
            _ => Err(FleetError::Handshake(format!(
                "unexpected ping reply: {reply:?}"
            ))),
        }
    }

    /// Sends one job and waits for its report, treating the heartbeat
    /// window and the job deadline as *separate* failure conditions: a
    /// worker that stops heartbeating is declared hung long before a
    /// legitimately slow measurement would blow the job deadline.
    fn dispatch(
        &self,
        sup: &mut WorkerSupervisor,
        job: &MeasureJob,
        attempt: u32,
    ) -> Result<MeasureOutcome, DispatchError> {
        let stream = sup.conn.as_mut().expect("dispatch requires a connection");
        let dead = DispatchError::Dead;
        stream
            .set_write_timeout(Some(self.options.job_timeout))
            .map_err(|e| dead(FleetError::Io(e)))?;
        let mut job = job.clone();
        job.attempt = attempt;
        let frame = Json::Obj(vec![
            ("type".into(), Json::Str("job".into())),
            ("job".into(), job.to_json()),
        ]);
        write_frame(stream, &frame).map_err(|e| dead(e.into()))?;
        let heartbeats = !self.options.heartbeat_interval.is_zero();
        let window = if heartbeats {
            self.options
                .heartbeat_window
                .max(self.options.heartbeat_interval)
        } else {
            self.options.job_timeout
        };
        let start = Instant::now();
        loop {
            let elapsed = start.elapsed();
            if elapsed >= self.options.job_timeout {
                return Err(dead(FleetError::JobTimeout(self.options.job_timeout)));
            }
            let read_window = window.min(self.options.job_timeout - elapsed);
            stream
                .set_read_timeout(Some(read_window))
                .map_err(|e| dead(FleetError::Io(e)))?;
            let reply = match read_frame(stream) {
                Ok(frame) => frame,
                Err(WireError::TimedOut) => {
                    let e = if start.elapsed() >= self.options.job_timeout || !heartbeats {
                        FleetError::JobTimeout(self.options.job_timeout)
                    } else {
                        FleetError::HeartbeatLost(window)
                    };
                    return Err(dead(e));
                }
                Err(e) => return Err(dead(e.into())),
            };
            match reply.get("type").and_then(|t| t.as_str()) {
                Ok("heartbeat") => continue,
                Ok("report") => {
                    let report = reply
                        .get("report")
                        .and_then(MeasureReport::from_json)
                        .map_err(|e| dead(WireError::Parse(e).into()))?;
                    if report.id != job.id {
                        return Err(dead(FleetError::IdMismatch {
                            expected: job.id,
                            got: report.id,
                        }));
                    }
                    return Ok(report.outcome);
                }
                Ok("refused") => {
                    return Err(DispatchError::Refused(
                        reply
                            .get("message")
                            .and_then(|m| m.as_str())
                            .unwrap_or("unspecified refusal")
                            .to_string(),
                    ))
                }
                _ => {
                    return Err(dead(FleetError::Wire(WireError::Parse(JsonError::new(
                        format!("unexpected worker reply: {reply:?}"),
                    )))))
                }
            }
        }
    }

    /// Runs one supervised worker's dispatch loop over the shared queue,
    /// healing the worker (reconnect + re-handshake) whenever it faults,
    /// and quarantining jobs that have killed too many workers.
    pub(crate) fn supervisor_round(&self, sup: &mut WorkerSupervisor, ctx: &RoundCtx<'_>) {
        // Ping an idle pre-existing connection once per round; a fresh
        // handshake is already proof of life.
        let mut needs_ping =
            !self.options.heartbeat_interval.is_zero() && matches!(sup.state, WorkerState::Healthy);
        loop {
            if ctx.cancel.cancelled() {
                return;
            }
            let popped = ctx.pending.lock().unwrap().pop_front();
            let Some((index, attempt)) = popped else {
                return;
            };
            // Establish (and when asked, verify) the connection before
            // trusting it with the popped job.
            loop {
                match self.ensure_connected(sup, ctx.cancel) {
                    Ensure::Failed => {
                        ctx.pending.lock().unwrap().push_front((index, attempt));
                        return;
                    }
                    Ensure::Reconnected => {
                        needs_ping = false;
                        break;
                    }
                    Ensure::Ready => {
                        if !needs_ping {
                            break;
                        }
                        needs_ping = false;
                        match self.ping(sup) {
                            Ok(()) => break,
                            Err(e) => {
                                eprintln!(
                                    "atim-fleet: worker {} failed its round ping ({e}); \
                                     reconnecting",
                                    sup.index
                                );
                                self.note_death(sup);
                            }
                        }
                    }
                }
            }
            self.counters.in_flight.fetch_add(1, Ordering::Relaxed);
            let outcome = self.dispatch(sup, &ctx.jobs[index], attempt);
            self.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(outcome) => {
                    ctx.results.lock().unwrap()[index] = Some(outcome);
                }
                Err(DispatchError::Refused(message)) => {
                    eprintln!(
                        "atim-fleet: worker {} refused job {} ({message}); \
                         measuring in-process",
                        sup.index, ctx.jobs[index].id
                    );
                    ctx.refused.lock().unwrap().push(index);
                }
                Err(DispatchError::Dead(e)) => {
                    eprintln!(
                        "atim-fleet: worker {} died ({e}) on job {}",
                        sup.index, ctx.jobs[index].id
                    );
                    self.note_death(sup);
                    let deaths = attempt + 1;
                    if deaths >= self.options.poison_threshold.max(1) {
                        eprintln!(
                            "atim-fleet: job {} has killed {deaths} workers; \
                             quarantining it for in-process measurement",
                            ctx.jobs[index].id
                        );
                        ctx.quarantined.lock().unwrap().push(index);
                        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                    } else {
                        ctx.pending.lock().unwrap().push_front((index, deaths));
                        self.counters.requeued.fetch_add(1, Ordering::Relaxed);
                    }
                    // Loop on: the next iteration heals this worker (or
                    // retires it and hands its queue to the survivors).
                }
            }
        }
    }
}
