//! Deterministic, capped exponential backoff for reconnect loops.
//!
//! No jitter on purpose: fleet recovery must be reproducible, both for the
//! bit-identical-to-sequential contract (recovery timing must never feed
//! back into results) and so the fault-injection tests can pin the exact
//! schedule.

use std::time::Duration;

/// The delay to sleep before reconnect attempt `attempt` (0-based).
///
/// Attempt 0 is immediate ([`Duration::ZERO`]): the first retry after a
/// fault should not wait, because the most common fleet fault — a worker
/// process replaced by a supervisor — is ready again instantly.  From
/// attempt 1 the delay doubles from `base` (`base`, `2*base`, `4*base`, …)
/// and saturates at `cap`.
///
/// The schedule is deterministic (a pure function of its arguments),
/// monotone non-decreasing in `attempt`, and never exceeds `cap` — all
/// three properties are pinned by property tests.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    let factor = 1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX);
    cap.min(base.saturating_mul(factor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_is_immediate_then_doubles_to_the_cap() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(750);
        assert_eq!(backoff_delay(0, base, cap), Duration::ZERO);
        assert_eq!(backoff_delay(1, base, cap), Duration::from_millis(100));
        assert_eq!(backoff_delay(2, base, cap), Duration::from_millis(200));
        assert_eq!(backoff_delay(3, base, cap), Duration::from_millis(400));
        assert_eq!(backoff_delay(4, base, cap), cap);
        assert_eq!(backoff_delay(5, base, cap), cap);
        assert_eq!(backoff_delay(u32::MAX, base, cap), cap);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let base = Duration::from_secs(u64::MAX / 2);
        let cap = Duration::from_secs(u64::MAX);
        // Saturates instead of panicking on shift/multiply overflow.
        assert_eq!(
            backoff_delay(200, base, cap),
            cap.min(base.saturating_mul(u32::MAX))
        );
    }
}
