//! Typed fleet errors.
//!
//! PR 7's handshake and dispatch paths reported faults as bare `String`s,
//! which made "this worker runs a different build" indistinguishable from
//! "the socket died" at every call site.  [`FleetError`] names each failure
//! class so supervisors can count skew separately from transport faults and
//! tests can assert on the *kind* of fault, not a message substring.

use std::fmt;
use std::io;
use std::time::Duration;

use atim_wire::WireError;

/// Why a fleet operation (handshake, dispatch, reconnect) failed.
#[derive(Debug)]
pub enum FleetError {
    /// A frame-layer fault: EOF, torn frame, oversized frame, undecodable
    /// JSON, socket timeout or I/O error while talking to a worker.
    Wire(WireError),
    /// A socket-level fault outside the frame layer (dialing, configuring
    /// timeouts, accepting a connection).
    Io(io::Error),
    /// The worker process could not be spawned or respawned.
    Spawn(io::Error),
    /// No worker dialed back within the connect deadline.
    ConnectTimeout(Duration),
    /// The worker answered the handshake with something that is not a
    /// well-formed `ready`/`error` frame.
    Handshake(String),
    /// The worker speaks a different fleet protocol version.  Counted as
    /// version skew; the worker is rejected before it measures anything.
    ProtocolSkew {
        /// The protocol version this fleet speaks.
        expected: u64,
        /// The version the worker announced.
        got: u64,
    },
    /// The worker runs a different `atim` build.  Counted as version skew;
    /// mixing builds could mix measurement semantics, so it is rejected.
    BuildSkew {
        /// The build version of this fleet.
        expected: String,
        /// The build the worker announced.
        got: String,
    },
    /// The worker rebuilt a backend whose fingerprint disagrees with the
    /// fleet's in-process backend — a different machine configuration.
    /// Counted as fingerprint skew and rejected.
    FingerprintSkew {
        /// The fingerprint of the fleet's in-process backend.
        expected: String,
        /// The fingerprint the worker echoed.
        got: String,
    },
    /// The worker reported an error of its own (e.g. it cannot reproduce
    /// the configure spec).
    Worker(String),
    /// A dispatched job blew its end-to-end deadline.
    JobTimeout(Duration),
    /// The worker stopped heartbeating mid-measurement: no frame arrived
    /// within the heartbeat window, long before the job deadline — the
    /// signature of a silent hang.
    HeartbeatLost(Duration),
    /// The worker answered with a report for a different job id.
    IdMismatch {
        /// The job id that was dispatched.
        expected: u64,
        /// The id the report carried.
        got: u64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Wire(e) => write!(f, "wire fault: {e}"),
            FleetError::Io(e) => write!(f, "socket fault: {e}"),
            FleetError::Spawn(e) => write!(f, "spawning worker process: {e}"),
            FleetError::ConnectTimeout(window) => {
                write!(f, "no worker connected within {window:?}")
            }
            FleetError::Handshake(detail) => write!(f, "malformed handshake: {detail}"),
            FleetError::ProtocolSkew { expected, got } => write!(
                f,
                "protocol skew: worker speaks fleet protocol v{got}, this fleet v{expected}"
            ),
            FleetError::BuildSkew { expected, got } => write!(
                f,
                "build skew: worker runs atim {got}, this fleet {expected} \
                 — refusing to mix measurements from different builds"
            ),
            FleetError::FingerprintSkew { expected, got } => write!(
                f,
                "fingerprint skew: worker backend {got} does not match {expected} \
                 — refusing to mix measurements from different machines"
            ),
            FleetError::Worker(message) => write!(f, "worker error: {message}"),
            FleetError::JobTimeout(deadline) => {
                write!(f, "job deadline {deadline:?} expired")
            }
            FleetError::HeartbeatLost(window) => write!(
                f,
                "no heartbeat within {window:?} — worker is silently hung"
            ),
            FleetError::IdMismatch { expected, got } => {
                write!(f, "report id {got} answers a different job than {expected}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Wire(e) => Some(e),
            FleetError::Io(e) | FleetError::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for FleetError {
    fn from(e: WireError) -> Self {
        FleetError::Wire(e)
    }
}

impl FleetError {
    /// Whether this fault is version or fingerprint skew (as opposed to a
    /// transport/protocol fault).
    pub fn is_skew(&self) -> bool {
        matches!(
            self,
            FleetError::ProtocolSkew { .. }
                | FleetError::BuildSkew { .. }
                | FleetError::FingerprintSkew { .. }
        )
    }
}

/// Why a dispatched job came back without an outcome (fleet-internal).
pub(crate) enum DispatchError {
    /// The worker is gone or untrustworthy: re-queue the job, mark the
    /// worker suspect.
    Dead(FleetError),
    /// The worker refused this job (it cannot reproduce it): measure it
    /// in-process, keep the worker.
    Refused(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_classification_separates_trust_faults_from_transport_faults() {
        assert!(FleetError::FingerprintSkew {
            expected: "a".into(),
            got: "b".into()
        }
        .is_skew());
        assert!(FleetError::BuildSkew {
            expected: "1".into(),
            got: "2".into()
        }
        .is_skew());
        assert!(FleetError::ProtocolSkew {
            expected: 2,
            got: 3
        }
        .is_skew());
        assert!(!FleetError::Wire(WireError::Closed).is_skew());
        assert!(!FleetError::JobTimeout(Duration::from_secs(1)).is_skew());
        assert!(!FleetError::HeartbeatLost(Duration::from_secs(1)).is_skew());
    }

    #[test]
    fn messages_name_both_sides_of_a_skew() {
        let text = FleetError::BuildSkew {
            expected: "0.9.1".into(),
            got: "0.9.0".into(),
        }
        .to_string();
        assert!(text.contains("0.9.1") && text.contains("0.9.0"), "{text}");
    }
}
