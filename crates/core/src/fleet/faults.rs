//! Deterministic fault injection for the worker side of the fleet.
//!
//! A [`FaultPlan`] is parsed from the `ATIM_FLEET_FAULTS` environment
//! variable and makes a worker process misbehave *on schedule*: die after
//! its N-th job, stall silently, emit a torn frame, or corrupt its first
//! handshakes with a wrong fingerprint/build/protocol version.  Schedules
//! are counted per process with global atomic counters, so every recovery
//! path in the fleet — reconnect, re-handshake, requeue, quarantine — can
//! be pinned by a test or the CI chaos-smoke without any randomness.
//!
//! The grammar is a comma-separated list of `name` or `name:value` tokens:
//!
//! | token                | effect                                                      |
//! |----------------------|-------------------------------------------------------------|
//! | `die:N`              | exit the process on receiving job N+1                       |
//! | `stall:N`            | hang forever (no heartbeats) on receiving job N+1           |
//! | `torn:N`             | write a torn frame and drop the connection on job N+1       |
//! | `poison:J`           | exit the process whenever a job with id J arrives           |
//! | `skew-fingerprint:K` | echo a corrupted fingerprint in the first K handshakes      |
//! | `skew-build:K`       | echo a foreign build version in the first K handshakes      |
//! | `skew-proto:K`       | announce the wrong protocol version in the first K handshakes |
//!
//! `skew-*` counts default to 1 when the value is omitted; all other tokens
//! require a value.  Invalid plans fail loudly (the worker refuses to
//! serve), like every other fleet knob.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable carrying the fault plan for `atim-worker`
/// processes.  Unset means no faults.
pub const FAULTS_ENV: &str = "ATIM_FLEET_FAULTS";

/// A deterministic misbehavior schedule for one worker process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Exit the process upon receiving job number N+1 (1-based count of
    /// jobs this process has been handed).
    pub die_after: Option<u64>,
    /// Hang forever — no reply, no heartbeat — on job number N+1.
    pub stall_after: Option<u64>,
    /// Write a torn frame (a length header promising more bytes than
    /// follow) and drop the connection on job number N+1.
    pub torn_after: Option<u64>,
    /// Exit the process whenever a job with this id arrives — the same job
    /// then kills every worker it reaches, driving the quarantine path.
    pub poison_job: Option<u64>,
    /// Corrupt the echoed backend fingerprint in the first K handshakes.
    pub skew_fingerprint: u64,
    /// Announce a foreign build version in the first K handshakes.
    pub skew_build: u64,
    /// Announce the wrong protocol version in the first K handshakes.
    pub skew_proto: u64,
}

/// What a [`FaultPlan`] injects on a given job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Exit the process abruptly (no reply, no shutdown frame).
    Die,
    /// Sleep forever without replying or heartbeating.
    Stall,
    /// Write a torn frame, then drop the connection.
    TornFrame,
}

impl FaultPlan {
    /// Parses the grammar described in the module docs.
    ///
    /// # Errors
    /// Returns a descriptive message for unknown tokens, missing or
    /// non-numeric values, and duplicate tokens.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in text.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (name, value) = match token.split_once(':') {
                Some((name, value)) => (name.trim(), Some(value.trim())),
                None => (token, None),
            };
            let parsed = |value: Option<&str>| -> Result<u64, String> {
                let raw = value
                    .ok_or_else(|| format!("fault {name:?} requires a value, e.g. {name}:2"))?;
                raw.parse::<u64>()
                    .map_err(|_| format!("fault {name:?} value {raw:?} is not a number"))
            };
            let skew_count = |value: Option<&str>| -> Result<u64, String> {
                match value {
                    None => Ok(1),
                    Some(_) => parsed(value),
                }
            };
            let occupied = |name: &str| format!("duplicate fault token {name:?}");
            match name {
                "die" => {
                    if plan.die_after.replace(parsed(value)?).is_some() {
                        return Err(occupied(name));
                    }
                }
                "stall" => {
                    if plan.stall_after.replace(parsed(value)?).is_some() {
                        return Err(occupied(name));
                    }
                }
                "torn" => {
                    if plan.torn_after.replace(parsed(value)?).is_some() {
                        return Err(occupied(name));
                    }
                }
                "poison" => {
                    if plan.poison_job.replace(parsed(value)?).is_some() {
                        return Err(occupied(name));
                    }
                }
                "skew-fingerprint" => {
                    if plan.skew_fingerprint != 0 {
                        return Err(occupied(name));
                    }
                    plan.skew_fingerprint = skew_count(value)?;
                }
                "skew-build" => {
                    if plan.skew_build != 0 {
                        return Err(occupied(name));
                    }
                    plan.skew_build = skew_count(value)?;
                }
                "skew-proto" => {
                    if plan.skew_proto != 0 {
                        return Err(occupied(name));
                    }
                    plan.skew_proto = skew_count(value)?;
                }
                other => {
                    return Err(format!(
                        "unknown fault token {other:?} (known: die:N, stall:N, torn:N, \
                         poison:J, skew-fingerprint[:K], skew-build[:K], skew-proto[:K])"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Parses `ATIM_FLEET_FAULTS`; unset yields the inert default plan.
    ///
    /// # Errors
    /// Returns the parse error for a set-but-invalid plan — a misconfigured
    /// fault harness must fail loudly, not run a partial schedule.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(raw) => FaultPlan::parse(&raw).map_err(|e| format!("{FAULTS_ENV}={raw:?}: {e}")),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Whether this plan injects nothing.
    pub fn is_inert(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// The fault (if any) to inject for the `nth` job this process has
    /// received (1-based), carrying id `job_id`.  Poison takes precedence
    /// over counted faults, then die > stall > torn.
    pub fn job_fault(&self, nth: u64, job_id: u64) -> Option<FaultAction> {
        if self.poison_job == Some(job_id) {
            return Some(FaultAction::Die);
        }
        if self.die_after.is_some_and(|n| nth == n + 1) {
            return Some(FaultAction::Die);
        }
        if self.stall_after.is_some_and(|n| nth == n + 1) {
            return Some(FaultAction::Stall);
        }
        if self.torn_after.is_some_and(|n| nth == n + 1) {
            return Some(FaultAction::TornFrame);
        }
        None
    }

    /// Whether the `nth` handshake of this process (1-based) should echo a
    /// corrupted fingerprint.
    pub fn skews_fingerprint(&self, nth: u64) -> bool {
        nth <= self.skew_fingerprint
    }

    /// Whether the `nth` handshake should announce a foreign build.
    pub fn skews_build(&self, nth: u64) -> bool {
        nth <= self.skew_build
    }

    /// Whether the `nth` handshake should announce the wrong protocol
    /// version.
    pub fn skews_proto(&self, nth: u64) -> bool {
        nth <= self.skew_proto
    }
}

static JOBS_RECEIVED: AtomicU64 = AtomicU64::new(0);
static HANDSHAKES: AtomicU64 = AtomicU64::new(0);
static ACTIVE_PLAN: OnceLock<Result<FaultPlan, String>> = OnceLock::new();

/// The process-wide fault plan, parsed from the environment exactly once.
/// Counters (jobs received, handshakes served) are process-global too, so
/// a respawned worker starts a fresh schedule — which is what lets a
/// `die:N` plan both fire and then heal.
pub(crate) fn active_plan() -> Result<&'static FaultPlan, String> {
    match ACTIVE_PLAN.get_or_init(FaultPlan::from_env) {
        Ok(plan) => Ok(plan),
        Err(e) => Err(e.clone()),
    }
}

/// Increments and returns the process-global 1-based job counter.
pub(crate) fn next_job() -> u64 {
    JOBS_RECEIVED.fetch_add(1, Ordering::Relaxed) + 1
}

/// Increments and returns the process-global 1-based handshake counter.
pub(crate) fn next_handshake() -> u64 {
    HANDSHAKES.fetch_add(1, Ordering::Relaxed) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_grammar_parses() {
        let plan = FaultPlan::parse(
            "die:2, stall:5,torn:7,poison:3,skew-fingerprint,skew-build:2,skew-proto:1",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                die_after: Some(2),
                stall_after: Some(5),
                torn_after: Some(7),
                poison_job: Some(3),
                skew_fingerprint: 1,
                skew_build: 2,
                skew_proto: 1,
            }
        );
        assert!(!plan.is_inert());
        assert!(FaultPlan::parse("").unwrap().is_inert());
        assert!(FaultPlan::parse("  ,, ").unwrap().is_inert());
    }

    #[test]
    fn invalid_plans_fail_loudly() {
        assert!(FaultPlan::parse("die")
            .unwrap_err()
            .contains("requires a value"));
        assert!(FaultPlan::parse("die:x")
            .unwrap_err()
            .contains("not a number"));
        assert!(FaultPlan::parse("explode:1")
            .unwrap_err()
            .contains("unknown fault token"));
        assert!(FaultPlan::parse("die:1,die:2")
            .unwrap_err()
            .contains("duplicate"));
        assert!(FaultPlan::parse("skew-build,skew-build")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn schedules_fire_exactly_once_at_the_configured_count() {
        let plan = FaultPlan::parse("die:2").unwrap();
        assert_eq!(plan.job_fault(1, 10), None);
        assert_eq!(plan.job_fault(2, 11), None);
        assert_eq!(plan.job_fault(3, 12), Some(FaultAction::Die));
        assert_eq!(plan.job_fault(4, 13), None);
    }

    #[test]
    fn poison_fires_on_the_job_id_not_the_count() {
        let plan = FaultPlan::parse("poison:5").unwrap();
        assert_eq!(plan.job_fault(1, 5), Some(FaultAction::Die));
        assert_eq!(plan.job_fault(100, 5), Some(FaultAction::Die));
        assert_eq!(plan.job_fault(6, 4), None);
    }

    #[test]
    fn skew_counts_cover_the_first_handshakes_only() {
        let plan = FaultPlan::parse("skew-fingerprint:2").unwrap();
        assert!(plan.skews_fingerprint(1));
        assert!(plan.skews_fingerprint(2));
        assert!(!plan.skews_fingerprint(3));
        assert!(!plan.skews_build(1));
        assert!(!plan.skews_proto(1));
    }

    #[test]
    fn fault_priority_is_poison_then_die_then_stall_then_torn() {
        let plan = FaultPlan::parse("die:1,stall:1,torn:1,poison:9").unwrap();
        assert_eq!(plan.job_fault(2, 9), Some(FaultAction::Die));
        assert_eq!(plan.job_fault(2, 0), Some(FaultAction::Die));
        let plan = FaultPlan::parse("stall:1,torn:1").unwrap();
        assert_eq!(plan.job_fault(2, 0), Some(FaultAction::Stall));
        let plan = FaultPlan::parse("torn:1").unwrap();
        assert_eq!(plan.job_fault(2, 0), Some(FaultAction::TornFrame));
    }
}
