//! A self-healing localhost measurement fleet behind the [`Backend`]
//! trait.
//!
//! The tuning loop's wall-clock is measurement-bound; PRs 2/4 made each
//! candidate cheaper, this module makes measurement *horizontally*
//! scalable: a [`FleetBackend`] fans each round's [`MeasureJob`]s across N
//! `atim-worker` processes over the same length-prefixed JSON frames
//! ([`atim_wire`]) the tuning daemon speaks — the distributed RPC-tracker
//! design of "Learning to Optimize Tensor Programs", on `std::net` alone.
//!
//! # Determinism
//!
//! Fleet measurement is **bit-identical to sequential** for fixed seeds:
//!
//! * results land in per-job slots indexed by batch position, so the tuner
//!   observes the same latencies in the same order regardless of which
//!   worker answered first (the same slot-indexed contract as
//!   [`SimBackend`](crate::backend::SimBackend)'s thread fan-out);
//! * each worker rebuilds the *same* backend from the serialized
//!   [`BackendSpec`] and proves it during a versioned handshake: protocol
//!   version, build version and the backend
//!   [`fingerprint`](Backend::fingerprint) must all match, and each kind
//!   of skew is counted separately in [`FleetStats`] and surfaced as a
//!   typed [`FleetError`];
//! * jobs a worker cannot reproduce exactly (an unknown generator, a
//!   workload whose `(name, shape)` coordinates do not round-trip to the
//!   original `ComputeDef`) are never dispatched: they fall back to the
//!   in-process backend, which is the ground truth.
//!
//! # Self-healing
//!
//! Every worker lives under a supervisor that tracks it through typed
//! [`WorkerState`]s.  A fault — EOF, torn frame, expired deadline, lost
//! heartbeat, failed ping — marks the worker `Suspect`; before its next
//! job the supervisor runs a bounded reconnect cycle with capped
//! deterministic exponential backoff ([`backoff_delay`]), re-running the
//! full configure handshake, and only an exhausted cycle retires the
//! worker.  Meanwhile the faulted job goes back to the *front* of the
//! shared queue.  Silent hangs are caught early: workers emit `heartbeat`
//! frames during long measurements, so a worker that goes quiet for a
//! heartbeat window is declared hung without waiting out the (much
//! longer) job deadline.
//!
//! A *poison job* — one that kills [`FleetOptions::poison_threshold`]
//! workers in a row — is pulled out of the requeue loop, quarantined, and
//! measured in-process with bounded retries, so one pathological
//! candidate cannot grind the fleet down.  When every worker is gone the
//! remaining jobs are measured in-process: a fleet degrades to exactly
//! the single-process behavior instead of failing a tuning run.  Nothing
//! is lost and nothing is duplicated: the trial history stays dense.
//!
//! # Fault injection
//!
//! The recovery paths are not best-effort folklore; each is pinned by
//! tests driving the deterministic [`FaultPlan`] harness
//! (`ATIM_FLEET_FAULTS`), which makes workers die on schedule, stall
//! silently, emit torn frames, or corrupt their handshake identity —
//! while tuned results stay bit-identical to sequential.

mod backoff;
mod error;
mod faults;
mod spec;
mod supervisor;
mod worker;

pub use backoff::backoff_delay;
pub use error::FleetError;
pub use faults::{FaultAction, FaultPlan, FAULTS_ENV};
pub use spec::BackendSpec;
pub use supervisor::WorkerState;
pub use worker::{run_worker, worker_connect, worker_listen};

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use atim_autotune::{
    Cancellation, Json, MeasureJob, MeasureOutcome, MeasureReport, SpaceGenerator, Trace,
    UpmemSketchGenerator,
};
use atim_sim::{ExecutionReport, UpmemConfig};
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result as TirResult;
use atim_wire::write_frame;
use atim_workloads::{Workload, WorkloadKind};

use crate::backend::Backend;
use crate::compiler::{CompileOptions, CompiledModule};
use crate::runtime::ExecutedRun;

use supervisor::{ReconnectTarget, RoundCtx, WorkerSupervisor};

/// The fleet protocol version announced (and required) in the configure
/// handshake.  Version 2 added protocol/build announcement, heartbeat
/// negotiation and ping/pong frames.
pub const PROTOCOL_VERSION: u64 = 2;

/// The build version this fleet/worker was compiled from, announced in
/// the handshake so build skew across machines is a typed, counted
/// condition instead of a silent measurement hazard.
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// Environment variable selecting the fleet size: unset or `0` measures
/// in-process, `N` spawns N local worker processes.
pub const WORKERS_ENV: &str = "ATIM_FLEET_WORKERS";

/// Environment variable overriding the worker binary the fleet spawns
/// (default: an `atim-worker` next to the current executable).
pub const WORKER_BIN_ENV: &str = "ATIM_WORKER_BIN";

/// Fault-injection knob for tests: a worker sleeps this many milliseconds
/// before measuring each job, widening the window in which a kill lands
/// mid-round.  Unset (the default) adds no delay.
pub const WORKER_DELAY_ENV: &str = "ATIM_WORKER_DELAY_MS";

/// Environment variable overriding [`FleetOptions::job_timeout`], in
/// milliseconds.  Must be a positive integer; invalid values fail loudly.
pub const JOB_TIMEOUT_ENV: &str = "ATIM_FLEET_JOB_TIMEOUT_MS";

/// Environment variable overriding [`FleetOptions::heartbeat_interval`],
/// in milliseconds (`0` disables heartbeats and round pings).  The
/// heartbeat window follows as `max(4 × interval, 250 ms)`.  Invalid
/// values fail loudly.
pub const HEARTBEAT_ENV: &str = "ATIM_FLEET_HEARTBEAT_MS";

/// Worker-pool observability counters, surfaced through
/// [`Backend::fleet_stats`] and the tuning daemon's stats reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers currently believed alive.
    pub workers_alive: usize,
    /// Jobs dispatched to a worker and not yet answered.
    pub jobs_in_flight: usize,
    /// Jobs re-queued after their worker died (cumulative).
    pub jobs_requeued: usize,
    /// Successful reconnect + re-handshake cycles (cumulative).
    pub reconnects: usize,
    /// Workers permanently retired after an exhausted reconnect cycle
    /// (cumulative).
    pub workers_retired: usize,
    /// Handshakes rejected because the worker's backend fingerprint did
    /// not match (cumulative).
    pub fingerprint_skews: usize,
    /// Handshakes rejected for protocol- or build-version skew
    /// (cumulative).
    pub version_skews: usize,
    /// Jobs quarantined for in-process measurement after killing too many
    /// workers (cumulative).
    pub jobs_quarantined: usize,
}

/// Knobs for [`FleetBackend::spawn`] / [`FleetBackend::attach`].
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Deadline for one dispatched job (write + measure + reply).  A
    /// worker missing it is treated as dead and its job re-queued; size it
    /// for the slowest single candidate, not the whole round.
    pub job_timeout: Duration,
    /// Deadline for a spawned worker to connect and complete its
    /// configure handshake.
    pub connect_timeout: Duration,
    /// How long a shutdown frame may block during fleet teardown before
    /// the worker is killed anyway.
    pub shutdown_timeout: Duration,
    /// How often a measuring worker emits heartbeat frames (and how often
    /// idle connections are pinged at the start of a round).
    /// [`Duration::ZERO`] disables heartbeats and pings, restoring the
    /// single job deadline as the only liveness signal.
    pub heartbeat_interval: Duration,
    /// How long a dispatched job may go without *any* frame (heartbeat or
    /// report) before the worker is declared silently hung.  Clamped to
    /// at least `heartbeat_interval`.
    pub heartbeat_window: Duration,
    /// Reconnect attempts per fault before a worker is retired.  `0`
    /// restores the pre-supervision behavior: first fault retires.
    pub reconnect_attempts: u32,
    /// Base delay of the reconnect backoff schedule (attempt 0 is always
    /// immediate; see [`backoff_delay`]).
    pub reconnect_backoff: Duration,
    /// Cap of the reconnect backoff schedule.
    pub reconnect_backoff_cap: Duration,
    /// A job that has killed this many distinct workers is quarantined:
    /// pulled from the requeue loop and measured in-process.  Clamped to
    /// at least 1.
    pub poison_threshold: u32,
    /// In-process re-measure attempts for a quarantined job whose first
    /// in-process measurement fails.
    pub quarantine_retries: u32,
    /// When attaching, tolerate workers whose initial handshake fails
    /// (they start `Suspect` and are healed by the first round's
    /// reconnect cycle) instead of failing `attach` outright.
    pub lenient_attach: bool,
    /// Override for the worker command line: `(program, args)`, where
    /// every occurrence of `{addr}` in an argument is replaced by the
    /// fleet's listen address.  Tests use this to re-invoke the current
    /// test binary; `None` runs `atim-worker --connect {addr}` with the
    /// binary resolved next to the current executable (or from
    /// `ATIM_WORKER_BIN`).
    pub command: Option<(PathBuf, Vec<String>)>,
    /// Extra environment variables for spawned workers, with the same
    /// `{addr}` substitution in values.
    pub envs: Vec<(String, String)>,
    /// The space-generator id jobs are routed to workers under (announced
    /// in the configure handshake; jobs carrying any other id fall back
    /// to in-process measurement).  Must name a resident generator —
    /// workers rebuild it from the id alone.  `None` follows
    /// `ATIM_SPACE_GENERATOR`, defaulting to the UPMEM sketch.
    pub space_generator: Option<String>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            job_timeout: Duration::from_secs(300),
            connect_timeout: Duration::from_secs(10),
            shutdown_timeout: Duration::from_millis(200),
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_window: Duration::from_secs(2),
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(100),
            reconnect_backoff_cap: Duration::from_secs(2),
            poison_threshold: 3,
            quarantine_retries: 1,
            lenient_attach: false,
            command: None,
            envs: Vec::new(),
            space_generator: None,
        }
    }
}

impl FleetOptions {
    /// Default options with the environment overrides applied:
    /// [`JOB_TIMEOUT_ENV`] and [`HEARTBEAT_ENV`].
    ///
    /// # Panics
    /// Panics with a descriptive message on invalid values — an explicitly
    /// misconfigured knob must never be silently ignored.
    pub fn from_env() -> Self {
        let mut options = FleetOptions::default();
        if let Ok(raw) = std::env::var(JOB_TIMEOUT_ENV) {
            match raw.trim().parse::<u64>() {
                Ok(ms) if ms > 0 => options.job_timeout = Duration::from_millis(ms),
                _ => panic!(
                    "{JOB_TIMEOUT_ENV} must be a positive integer of milliseconds, \
                     got \"{raw}\""
                ),
            }
        }
        if let Ok(raw) = std::env::var(HEARTBEAT_ENV) {
            match raw.trim().parse::<u64>() {
                Ok(ms) => {
                    options.heartbeat_interval = Duration::from_millis(ms);
                    options.heartbeat_window = Duration::from_millis((ms * 4).max(250));
                }
                Err(_) => panic!(
                    "{HEARTBEAT_ENV} must be a non-negative integer of milliseconds \
                     (0 disables heartbeats), got \"{raw}\""
                ),
            }
        }
        options
    }
}

/// Parses `ATIM_FLEET_WORKERS`: `None` when unset or `0` (measure
/// in-process), `Some(n)` to run an n-worker fleet.
///
/// # Panics
/// Panics with a descriptive message on non-numeric values — an explicitly
/// misconfigured knob must never be silently ignored.
pub fn workers_from_env() -> Option<usize> {
    let raw = std::env::var(WORKERS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(0) => None,
        Ok(n) => Some(n),
        Err(_) => panic!(
            "{WORKERS_ENV} must be a non-negative integer, got \"{raw}\" \
             (0 or unset measures in-process)"
        ),
    }
}

/// Locates the `atim-worker` binary: `ATIM_WORKER_BIN` when set, otherwise
/// a sibling of the current executable (searching the executable's
/// directory and its parent, which covers `target/<profile>/`,
/// `target/<profile>/deps/` and `target/<profile>/examples/`).
fn resolve_worker_bin() -> io::Result<PathBuf> {
    if let Ok(path) = std::env::var(WORKER_BIN_ENV) {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe()?;
    let name = format!("atim-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    while let Some(d) = dir {
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        // Test and example binaries live one or two levels below the
        // profile directory that holds the worker bin.
        if d.file_name().is_some_and(|n| n == "target") {
            break;
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!(
            "no atim-worker binary next to {} (build it with \
             `cargo build -p atim-core --bin atim-worker`, or set {WORKER_BIN_ENV})",
            exe.display()
        ),
    ))
}

/// The stored recipe for (re)spawning worker processes.
struct SpawnTarget {
    program: PathBuf,
    args: Vec<String>,
    addr: SocketAddr,
}

/// Cumulative fleet counters (all relaxed: observability, not
/// synchronization).
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) alive: AtomicUsize,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) requeued: AtomicUsize,
    pub(crate) reconnects: AtomicUsize,
    pub(crate) retired: AtomicUsize,
    pub(crate) fingerprint_skews: AtomicUsize,
    pub(crate) version_skews: AtomicUsize,
    pub(crate) quarantined: AtomicUsize,
}

/// A [`Backend`] that fans measurement jobs across supervised local worker
/// processes.
///
/// Everything except measurement — compilation, timing of an explicit
/// module, functional execution, the cache fingerprint — delegates to the
/// in-process backend built from the same [`BackendSpec`], so a fleet
/// session is a drop-in replacement for a sequential one (including shared
/// schedule-cache keys).
pub struct FleetBackend {
    inner: Box<dyn Backend>,
    spec: BackendSpec,
    generator: String,
    options: FleetOptions,
    supervisors: Mutex<Vec<WorkerSupervisor>>,
    children: Mutex<Vec<Option<Child>>>,
    listener: Option<TcpListener>,
    spawn_target: Option<SpawnTarget>,
    respawn_lock: Mutex<()>,
    ping_seq: AtomicUsize,
    counters: Counters,
}

impl std::fmt::Debug for FleetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetBackend")
            .field("inner", &self.inner.name())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FleetBackend {
    /// Spawns `workers` local worker processes and hands each the spec
    /// over a versioned configure handshake.  Workers that fail to spawn,
    /// connect in time, or pass verification start `Suspect` with a
    /// diagnostic on stderr — the first round's reconnect cycle retries
    /// them (zero healthy workers still degrades to in-process
    /// measurement).
    ///
    /// # Errors
    /// Fails only when the listener cannot bind or the worker binary
    /// cannot be resolved — a *degraded* fleet is not an error, an
    /// unlaunchable one is.
    pub fn spawn(spec: BackendSpec, workers: usize, options: FleetOptions) -> io::Result<Self> {
        let mut fleet = Self::empty(spec, options);
        if workers == 0 {
            return Ok(fleet);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (program, args) = match &fleet.options.command {
            Some((program, args)) => (program.clone(), args.clone()),
            None => (
                resolve_worker_bin()?,
                vec!["--connect".to_string(), "{addr}".to_string()],
            ),
        };
        fleet.listener = Some(listener);
        fleet.spawn_target = Some(SpawnTarget {
            program,
            args,
            addr,
        });

        // Spawn, accept and handshake one worker at a time so each child
        // process is paired with the supervisor (and child slot) that owns
        // its lifecycle — respawns must kill the right process.
        let deadline = Instant::now() + fleet.options.connect_timeout;
        let mut supervisors = Vec::with_capacity(workers);
        let mut children = Vec::with_capacity(workers);
        let mut healthy = 0;
        for index in 0..workers {
            match fleet.spawn_child() {
                Ok(child) => children.push(Some(child)),
                Err(e) => {
                    eprintln!("atim-fleet: failed to spawn worker {index}: {e}");
                    children.push(None);
                    supervisors.push(WorkerSupervisor::suspect(index, ReconnectTarget::Spawn));
                    continue;
                }
            }
            match fleet.accept_one(deadline).and_then(|s| fleet.handshake(s)) {
                Ok(stream) => {
                    healthy += 1;
                    supervisors.push(WorkerSupervisor::healthy(
                        index,
                        ReconnectTarget::Spawn,
                        stream,
                    ));
                }
                Err(e) => {
                    eprintln!(
                        "atim-fleet: worker {index} rejected ({e}); \
                         will retry during the next round"
                    );
                    supervisors.push(WorkerSupervisor::suspect(index, ReconnectTarget::Spawn));
                }
            }
        }
        if healthy < workers {
            eprintln!(
                "atim-fleet: {healthy}/{workers} workers verified at startup; \
                 the rest will be healed (or retired) by reconnect cycles"
            );
        }
        fleet.counters.alive.store(healthy, Ordering::Relaxed);
        *fleet.supervisors.lock().unwrap() = supervisors;
        *fleet.children.lock().unwrap() = children;
        Ok(fleet)
    }

    /// Attaches to already-running workers listening on `addrs` (started
    /// with `atim-worker --listen`), configuring each with the spec.
    ///
    /// # Errors
    /// Fails when a worker cannot be reached or rejects the handshake —
    /// explicitly named workers are expected to exist.  With
    /// [`FleetOptions::lenient_attach`] such workers start `Suspect`
    /// instead and are retried by the first round's reconnect cycle.
    pub fn attach(
        spec: BackendSpec,
        addrs: &[SocketAddr],
        options: FleetOptions,
    ) -> io::Result<Self> {
        let fleet = Self::empty(spec, options);
        let mut supervisors = Vec::with_capacity(addrs.len());
        let mut healthy = 0;
        for (index, addr) in addrs.iter().enumerate() {
            let target = ReconnectTarget::Attach(*addr);
            let attempt = TcpStream::connect_timeout(addr, fleet.options.connect_timeout)
                .map_err(FleetError::Io)
                .and_then(|stream| fleet.handshake(stream));
            match attempt {
                Ok(stream) => {
                    healthy += 1;
                    supervisors.push(WorkerSupervisor::healthy(index, target, stream));
                }
                Err(e) if fleet.options.lenient_attach => {
                    eprintln!(
                        "atim-fleet: worker {index} at {addr} rejected ({e}); \
                         will retry during the next round"
                    );
                    supervisors.push(WorkerSupervisor::suspect(index, target));
                }
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
        fleet.counters.alive.store(healthy, Ordering::Relaxed);
        *fleet.supervisors.lock().unwrap() = supervisors;
        Ok(fleet)
    }

    /// Builds a fleet from the `ATIM_FLEET_WORKERS` environment knob
    /// (with [`FleetOptions::from_env`] overrides): `None` when the knob
    /// is unset or `0` (callers should use their in-process backend
    /// directly).
    ///
    /// # Panics
    /// Panics when the knob is set but the fleet cannot launch (bad value,
    /// missing worker binary, unbindable listener) — an explicitly
    /// requested fleet must never silently degrade to nothing at startup.
    pub fn from_env(spec: BackendSpec) -> Option<Self> {
        let workers = workers_from_env()?;
        Some(
            Self::spawn(spec, workers, FleetOptions::from_env()).unwrap_or_else(|e| {
                panic!("{WORKERS_ENV}={workers}: failed to launch the measurement fleet: {e}")
            }),
        )
    }

    fn empty(spec: BackendSpec, options: FleetOptions) -> Self {
        let generator = match &options.space_generator {
            Some(id) => {
                assert!(
                    atim_autotune::resolve_generator(id).is_some(),
                    "fleet space generator {id:?} is not a resident generator \
                     (workers rebuild it from the id alone); known ids: {:?}",
                    atim_autotune::RESIDENT_GENERATOR_IDS
                );
                id.clone()
            }
            None => atim_autotune::generator_from_env()
                .unwrap_or_else(|e| panic!("{e}"))
                .map(|g| g.name().to_string())
                .unwrap_or_else(|| SpaceGenerator::name(&UpmemSketchGenerator).to_string()),
        };
        FleetBackend {
            inner: spec.build(),
            spec,
            generator,
            options,
            supervisors: Mutex::new(Vec::new()),
            children: Mutex::new(Vec::new()),
            listener: None,
            spawn_target: None,
            respawn_lock: Mutex::new(()),
            ping_seq: AtomicUsize::new(0),
            counters: Counters::default(),
        }
    }

    /// Spawns one worker child process from the stored spawn recipe.
    pub(crate) fn spawn_child(&self) -> io::Result<Child> {
        let target = self.spawn_target.as_ref().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                "fleet has no spawn command (attached workers reconnect by redialing)",
            )
        })?;
        let substitute = |s: &str| s.replace("{addr}", &target.addr.to_string());
        let mut command = Command::new(&target.program);
        command
            .args(target.args.iter().map(|a| substitute(a)))
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        for (key, value) in &self.options.envs {
            command.env(key, substitute(value));
        }
        command.spawn()
    }

    /// Accepts one worker connection from the fleet listener before
    /// `deadline`.
    pub(crate) fn accept_one(&self, deadline: Instant) -> Result<TcpStream, FleetError> {
        let listener = self.listener.as_ref().ok_or_else(|| {
            FleetError::Handshake("fleet has no listener for spawned workers".into())
        })?;
        loop {
            match listener.accept() {
                Ok((stream, _)) => return Ok(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(FleetError::ConnectTimeout(self.options.connect_timeout));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(FleetError::Io(e)),
            }
        }
    }

    /// Current worker-pool counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            workers_alive: self.counters.alive.load(Ordering::Relaxed),
            jobs_in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            jobs_requeued: self.counters.requeued.load(Ordering::Relaxed),
            reconnects: self.counters.reconnects.load(Ordering::Relaxed),
            workers_retired: self.counters.retired.load(Ordering::Relaxed),
            fingerprint_skews: self.counters.fingerprint_skews.load(Ordering::Relaxed),
            version_skews: self.counters.version_skews.load(Ordering::Relaxed),
            jobs_quarantined: self.counters.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of workers currently believed alive.
    pub fn workers_alive(&self) -> usize {
        self.counters.alive.load(Ordering::Relaxed)
    }

    /// A snapshot of every supervised worker's health state (spawn/attach
    /// order).  Mid-round the supervisors are owned by the dispatch
    /// threads and the snapshot is empty.
    pub fn worker_states(&self) -> Vec<WorkerState> {
        self.supervisors
            .lock()
            .unwrap()
            .iter()
            .map(|sup| sup.state)
            .collect()
    }

    /// Fault injection for chaos tests: SIGKILLs the `index`-th spawned
    /// worker process (spawn order).  Returns whether a process was
    /// killed.  The death is *detected* at the next dispatch to that
    /// worker, which re-queues the in-flight job and starts a reconnect
    /// cycle — exactly the path a real worker crash takes.
    pub fn kill_worker(&self, index: usize) -> bool {
        let mut children = self.children.lock().unwrap();
        match children.get_mut(index).and_then(|slot| slot.as_mut()) {
            Some(child) => {
                let killed = child.kill().is_ok();
                let _ = child.wait();
                killed
            }
            None => false,
        }
    }

    /// Whether a job can be reproduced bit-identically by a worker that
    /// only receives the job's serialized form.
    fn remotable(&self, job: &MeasureJob, def: &ComputeDef) -> bool {
        job.exec == atim_autotune::EXEC_TIMING
            && job.generator == self.generator
            && WorkloadKind::parse(&job.workload)
                .map(|kind| Workload::new(kind, job.shape.clone()))
                .and_then(|w| w.try_compute_def())
                .is_some_and(|resolved| resolved == *def)
    }
}

impl Drop for FleetBackend {
    fn drop(&mut self) {
        // Ask nicely first: a shutdown frame lets workers exit cleanly.
        let shutdown = Json::Obj(vec![("type".into(), Json::Str("shutdown".into()))]);
        for sup in self.supervisors.get_mut().unwrap().iter_mut() {
            if let Some(stream) = sup.conn.as_mut() {
                let _ = stream.set_write_timeout(Some(self.options.shutdown_timeout));
                let _ = write_frame(stream, &shutdown);
            }
            sup.conn = None;
        }
        for child in self.children.get_mut().unwrap().iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Backend for FleetBackend {
    fn name(&self) -> &str {
        "fleet"
    }

    fn hardware(&self) -> &UpmemConfig {
        self.inner.hardware()
    }

    /// Delegates to the in-process backend: a fleet produces the *same*
    /// latencies as its inner backend (that is the whole contract), so it
    /// must share schedule-cache entries with sequential sessions instead
    /// of fragmenting the cache by worker topology.
    fn fingerprint(&self) -> String {
        self.inner.fingerprint()
    }

    fn compile_options(&self) -> CompileOptions {
        self.inner.compile_options()
    }

    fn time(&self, module: &CompiledModule) -> TirResult<ExecutionReport> {
        self.inner.time(module)
    }

    fn execute(&self, module: &CompiledModule, inputs: &[Vec<f32>]) -> TirResult<ExecutedRun> {
        self.inner.execute(module, inputs)
    }

    fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        self.inner.measure(trace, def)
    }

    fn measure_batch(&self, traces: &[Trace], def: &ComputeDef) -> Vec<Option<f64>> {
        self.measure_batch_cancellable(traces, def, &Cancellation::none())
            .into_iter()
            .map(|outcome| match outcome {
                MeasureOutcome::Measured(latency) => Some(latency),
                MeasureOutcome::Failed => None,
                MeasureOutcome::Skipped => unreachable!("nothing can cancel Cancellation::none()"),
            })
            .collect()
    }

    fn measure_batch_cancellable(
        &self,
        traces: &[Trace],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        // Route raw traces through the job form so direct batch callers
        // get fleet measurement too (seed 0: provenance only).
        let jobs: Vec<MeasureJob> = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                MeasureJob::timing_for_def(i as u64, def, self.generator.clone(), 0, trace.clone())
            })
            .collect();
        self.measure_jobs(&jobs, def, cancel)
            .into_iter()
            .map(|report| report.outcome)
            .collect()
    }

    fn measure_jobs(
        &self,
        jobs: &[MeasureJob],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureReport> {
        let results = Mutex::new(vec![None; jobs.len()]);
        let pending: Mutex<VecDeque<(usize, u32)>> = Mutex::new(
            (0..jobs.len())
                .filter(|&i| self.remotable(&jobs[i], def))
                .map(|i| (i, 0))
                .collect(),
        );
        let refused: Mutex<Vec<usize>> = Mutex::new(
            (0..jobs.len())
                .filter(|&i| !self.remotable(&jobs[i], def))
                .collect(),
        );
        let quarantined: Mutex<Vec<usize>> = Mutex::new(Vec::new());

        let mut supervisors = std::mem::take(&mut *self.supervisors.lock().unwrap());
        let usable = supervisors
            .iter()
            .any(|sup| sup.state != WorkerState::Retired);
        if usable && !pending.lock().unwrap().is_empty() {
            let ctx = RoundCtx {
                jobs,
                pending: &pending,
                results: &results,
                refused: &refused,
                quarantined: &quarantined,
                cancel,
            };
            std::thread::scope(|scope| {
                for sup in supervisors.iter_mut() {
                    if sup.state == WorkerState::Retired {
                        continue;
                    }
                    let ctx = &ctx;
                    scope.spawn(move || self.supervisor_round(sup, ctx));
                }
            });
        }
        *self.supervisors.lock().unwrap() = supervisors;

        // Everything the fleet could not (or no longer can) measure runs
        // on the in-process backend, in ascending slot order: leftover
        // queue entries (all workers died, or none existed), refused jobs,
        // quarantined jobs, and — via the inner backend's own cancellation
        // check — anything a fired token should skip.
        let quarantined: Vec<usize> = quarantined.into_inner().unwrap();
        let mut local: Vec<usize> = pending
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|(slot, _)| slot)
            .collect();
        local.extend(refused.into_inner().unwrap());
        local.extend(quarantined.iter().copied());
        local.sort_unstable();
        if !local.is_empty() {
            let batch: Vec<MeasureJob> = local.iter().map(|&i| jobs[i].clone()).collect();
            let reports = self.inner.measure_jobs(&batch, def, cancel);
            let mut results = results.lock().unwrap();
            for (&slot, report) in local.iter().zip(reports) {
                results[slot] = Some(report.outcome);
            }
        }

        // Bounded in-process retries for quarantined jobs whose first
        // local measurement failed (the deterministic backends make this
        // rare, but quarantine exists precisely for pathological jobs).
        if self.options.quarantine_retries > 0 {
            let mut results = results.lock().unwrap();
            for &slot in &quarantined {
                let mut retries = 0;
                while matches!(results[slot], Some(MeasureOutcome::Failed))
                    && retries < self.options.quarantine_retries
                {
                    retries += 1;
                    eprintln!(
                        "atim-fleet: quarantined job {} failed in-process; \
                         retry {retries}/{}",
                        jobs[slot].id, self.options.quarantine_retries
                    );
                    let report =
                        self.inner
                            .measure_jobs(std::slice::from_ref(&jobs[slot]), def, cancel);
                    if let Some(report) = report.into_iter().next() {
                        results[slot] = Some(report.outcome);
                    }
                }
            }
        }

        results
            .into_inner()
            .unwrap()
            .into_iter()
            .zip(jobs)
            .map(|(outcome, job)| {
                MeasureReport::new(
                    job.id,
                    outcome.expect("every fleet job must resolve to an outcome"),
                )
            })
            .collect()
    }

    fn fleet_stats(&self) -> Option<FleetStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;

    #[test]
    fn zero_worker_fleets_measure_in_process() {
        use atim_autotune::ScheduleConfig;
        let def = ComputeDef::mtv("mtv", 64, 48);
        let fleet = FleetBackend::spawn(
            BackendSpec::analytic(UpmemConfig::small()),
            0,
            FleetOptions::default(),
        )
        .unwrap();
        let inner = AnalyticBackend::new(UpmemConfig::small());
        let trace = ScheduleConfig::default_for(&def, inner.hardware()).to_trace(&def);
        assert_eq!(
            fleet.measure_batch(std::slice::from_ref(&trace), &def),
            inner.measure_batch(&[trace], &def)
        );
        assert_eq!(fleet.stats(), FleetStats::default());
        assert_eq!(fleet.fingerprint(), inner.fingerprint());
        assert!(fleet.worker_states().is_empty());
    }

    #[test]
    fn fleet_workers_env_parses_like_the_other_knobs() {
        // The env itself is process-global; exercise the parser contract
        // through a scoped set/remove.  Invalid values are covered by the
        // panic contract (not exercised here to keep the env clean).
        assert!(workers_from_env().is_none() || std::env::var(WORKERS_ENV).is_ok());
    }

    #[test]
    fn default_options_keep_heartbeats_distinct_from_job_deadlines() {
        let options = FleetOptions::default();
        assert!(options.heartbeat_window < options.job_timeout);
        assert!(options.heartbeat_interval < options.heartbeat_window);
        assert!(options.poison_threshold >= 1);
        assert!(options.reconnect_attempts >= 1);
    }

    #[test]
    fn remotability_rejects_foreign_defs_and_exec_modes() {
        let fleet = FleetBackend::spawn(
            BackendSpec::analytic(UpmemConfig::small()),
            0,
            FleetOptions::default(),
        )
        .unwrap();
        let def = ComputeDef::mtv("mtv", 64, 48);
        let trace =
            atim_autotune::ScheduleConfig::default_for(&def, fleet.hardware()).to_trace(&def);
        let good = MeasureJob::timing_for_def(0, &def, "upmem", 0, trace.clone());
        assert!(fleet.remotable(&good, &def));

        // A GEMV with a non-canonical scalar does not round-trip through
        // (name, shape) — it must never be dispatched to a worker.
        let custom = ComputeDef::gemv("gemv", 97, 103, 1.5);
        let custom_trace =
            atim_autotune::ScheduleConfig::default_for(&custom, fleet.hardware()).to_trace(&custom);
        let custom_job = MeasureJob::timing_for_def(0, &custom, "upmem", 0, custom_trace);
        assert!(!fleet.remotable(&custom_job, &custom));

        let mut functional = good.clone();
        functional.exec = "functional".into();
        assert!(!fleet.remotable(&functional, &def));

        let mut foreign_generator = good;
        foreign_generator.generator = "custom".into();
        assert!(!fleet.remotable(&foreign_generator, &def));
    }
}
