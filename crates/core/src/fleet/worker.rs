//! The worker side of the fleet protocol: configure handshake, the
//! job/report loop, heartbeat emission during measurement, and the
//! fault-injection hooks driven by [`FaultPlan`](super::FaultPlan).

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::Duration;

use atim_autotune::{
    resolve_generator, Json, JsonCodec, MeasureJob, MeasureOutcome, MeasureReport, SpaceGenerator,
    EXEC_TIMING, RESIDENT_GENERATOR_IDS,
};
use atim_wire::{read_frame, write_frame, WireError};
use atim_workloads::{Workload, WorkloadKind};

use super::faults::{self, FaultAction, FaultPlan};
use super::spec::BackendSpec;
use super::{build_version, PROTOCOL_VERSION, WORKER_DELAY_ENV};
use crate::backend::Backend;

/// Runs the worker side of the fleet protocol over one connection:
/// configure handshake (protocol + build version + backend fingerprint),
/// then a job/report loop — with heartbeat frames during long
/// measurements and ping/pong liveness replies — until the fleet hangs
/// up.
///
/// # Errors
/// Returns a message for protocol violations, unreproducible configure
/// requests, and an invalid `ATIM_FLEET_FAULTS` plan; a clean disconnect
/// (EOF between frames or an explicit shutdown frame) is `Ok`.
pub fn run_worker(stream: TcpStream) -> Result<(), String> {
    let plan = faults::active_plan()?;
    serve_connection(stream, plan)
}

fn serve_connection(mut stream: TcpStream, plan: &FaultPlan) -> Result<(), String> {
    stream.set_nodelay(true).ok();
    let configure = match read_frame(&mut stream) {
        Ok(frame) => frame,
        Err(WireError::Closed) => return Ok(()),
        Err(e) => return Err(format!("reading configure frame: {e}")),
    };
    let refuse = |stream: &mut TcpStream, message: String| -> Result<(), String> {
        let frame = Json::Obj(vec![
            ("type".into(), Json::Str("error".into())),
            ("message".into(), Json::Str(message.clone())),
        ]);
        let _ = write_frame(stream, &frame);
        Err(message)
    };
    if configure.get("type").and_then(|t| t.as_str()).ok() != Some("configure") {
        return refuse(
            &mut stream,
            format!("expected a configure frame, got {configure:?}"),
        );
    }
    let proto = configure
        .get("proto")
        .and_then(|p| p.as_i64())
        .unwrap_or(1) // pre-versioning fleets never announced one
        .max(0) as u64;
    if proto != PROTOCOL_VERSION {
        return refuse(
            &mut stream,
            format!("fleet speaks protocol v{proto}, this worker v{PROTOCOL_VERSION}"),
        );
    }
    let generator_id = match configure.get("generator").and_then(|g| g.as_str()) {
        Ok(id) => id.to_string(),
        Err(e) => return refuse(&mut stream, format!("configure frame: {e}")),
    };
    let Some(generator) = resolve_generator(&generator_id) else {
        return refuse(
            &mut stream,
            format!(
                "unknown space generator {generator_id:?} \
                 (this worker knows {RESIDENT_GENERATOR_IDS:?})"
            ),
        );
    };
    let spec = match configure.get("spec").and_then(BackendSpec::from_json) {
        Ok(spec) => spec,
        Err(e) => return refuse(&mut stream, format!("configure spec: {e}")),
    };
    let heartbeat_ms = configure
        .get("heartbeat_ms")
        .and_then(|h| h.as_i64())
        .unwrap_or(0)
        .max(0) as u64;
    let backend = spec.build();

    // Fault injection: the first K handshakes of this process may echo a
    // corrupted identity, exercising the fleet's skew counters and its
    // reconnect-to-heal path (the next handshake is clean again).
    let nth = faults::next_handshake();
    let mut fingerprint = backend.fingerprint();
    if plan.skews_fingerprint(nth) {
        fingerprint.push_str("+skewed");
    }
    let build = if plan.skews_build(nth) {
        "0.0.0-skewed".to_string()
    } else {
        build_version().to_string()
    };
    let proto_echo = if plan.skews_proto(nth) {
        PROTOCOL_VERSION + 1
    } else {
        PROTOCOL_VERSION
    };
    let ready = Json::Obj(vec![
        ("type".into(), Json::Str("ready".into())),
        ("proto".into(), Json::Int(proto_echo as i64)),
        ("build".into(), Json::Str(build)),
        ("fingerprint".into(), Json::Str(fingerprint)),
    ]);
    write_frame(&mut stream, &ready).map_err(|e| format!("sending ready frame: {e}"))?;

    let delay = std::env::var(WORKER_DELAY_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .map(Duration::from_millis);

    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(format!("reading job frame: {e}")),
        };
        match frame.get("type").and_then(|t| t.as_str()) {
            Ok("shutdown") => return Ok(()),
            Ok("ping") => {
                let nonce = frame.get("nonce").and_then(|n| n.as_i64()).unwrap_or(0);
                let pong = Json::Obj(vec![
                    ("type".into(), Json::Str("pong".into())),
                    ("nonce".into(), Json::Int(nonce)),
                ]);
                write_frame(&mut stream, &pong).map_err(|e| format!("sending pong frame: {e}"))?;
                continue;
            }
            Ok("job") => {}
            _ => return Err(format!("unexpected fleet frame: {frame:?}")),
        }
        let job = match frame.get("job").and_then(MeasureJob::from_json) {
            Ok(job) => job,
            Err(e) => return Err(format!("undecodable job frame: {e}")),
        };
        let nth_job = faults::next_job();
        match plan.job_fault(nth_job, job.id) {
            Some(FaultAction::Die) => {
                eprintln!(
                    "atim-worker: fault injection: dying on job {} (job #{nth_job} of this process)",
                    job.id
                );
                std::process::exit(3);
            }
            Some(FaultAction::Stall) => {
                eprintln!(
                    "atim-worker: fault injection: stalling silently on job {} (job #{nth_job})",
                    job.id
                );
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            Some(FaultAction::TornFrame) => {
                eprintln!(
                    "atim-worker: fault injection: writing a torn frame for job {} (job #{nth_job})",
                    job.id
                );
                let _ = write_torn_frame(&mut stream);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return Err("fault injection: torn frame".into());
            }
            None => {}
        }
        let reply = match measure_with_heartbeats(
            &mut stream,
            &job,
            backend.as_ref(),
            generator.as_ref(),
            delay,
            heartbeat_ms,
        ) {
            Ok(outcome) => Json::Obj(vec![
                ("type".into(), Json::Str("report".into())),
                (
                    "report".into(),
                    MeasureReport::new(job.id, outcome).to_json(),
                ),
            ]),
            Err(message) => Json::Obj(vec![
                ("type".into(), Json::Str("refused".into())),
                ("id".into(), Json::Int(job.id as i64)),
                ("message".into(), Json::Str(message)),
            ]),
        };
        write_frame(&mut stream, &reply).map_err(|e| format!("sending report frame: {e}"))?;
    }
}

/// Writes a length header that promises far more bytes than follow, then
/// stops — the canonical torn frame.  The fleet's next read sees
/// [`WireError::Truncated`] (or a timeout) and starts the recovery path.
fn write_torn_frame(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(&1024u32.to_be_bytes())?;
    stream.write_all(b"{\"type\"")?;
    stream.flush()
}

/// Measures one job while emitting `heartbeat` frames every
/// `heartbeat_ms` milliseconds of silence, so the fleet can tell "still
/// measuring" from "silently hung".  The measurement runs on a scoped
/// thread; only this thread touches the stream.
fn measure_with_heartbeats(
    stream: &mut TcpStream,
    job: &MeasureJob,
    backend: &dyn Backend,
    generator: &dyn SpaceGenerator,
    delay: Option<Duration>,
    heartbeat_ms: u64,
) -> Result<MeasureOutcome, String> {
    if heartbeat_ms == 0 {
        return worker_measure(job, backend, generator, delay);
    }
    let interval = Duration::from_millis(heartbeat_ms);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        scope.spawn(move || {
            let _ = tx.send(worker_measure(job, backend, generator, delay));
        });
        let mut mute = false;
        loop {
            match rx.recv_timeout(interval) {
                Ok(result) => return result,
                Err(RecvTimeoutError::Timeout) => {
                    if mute {
                        continue;
                    }
                    let beat = Json::Obj(vec![
                        ("type".into(), Json::Str("heartbeat".into())),
                        ("id".into(), Json::Int(job.id as i64)),
                    ]);
                    if write_frame(stream, &beat).is_err() {
                        // The fleet is gone; let the measurement finish so
                        // the scoped thread can join, the report write will
                        // surface the dead socket.
                        mute = true;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err("measurement thread died before reporting".into())
                }
            }
        }
    })
}

/// Measures one job on the worker's rebuilt backend, or explains why it
/// cannot be reproduced here (the fleet then measures it in-process).
fn worker_measure(
    job: &MeasureJob,
    backend: &dyn Backend,
    generator: &dyn SpaceGenerator,
    delay: Option<Duration>,
) -> Result<MeasureOutcome, String> {
    if job.exec != EXEC_TIMING {
        return Err(format!("exec mode {:?} is not supported", job.exec));
    }
    let def = WorkloadKind::parse(&job.workload)
        .map(|kind| Workload::new(kind, job.shape.clone()))
        .and_then(|w| w.try_compute_def())
        .ok_or_else(|| {
            format!(
                "workload {}{:?} does not resolve to a computation here",
                job.workload, job.shape
            )
        })?;
    let trace = generator
        .materialize(&job.trace, &def, backend.hardware())
        .map_err(|e| format!("trace does not materialize: {e}"))?;
    if let Some(delay) = delay {
        std::thread::sleep(delay);
    }
    Ok(MeasureOutcome::from_result(backend.measure(&trace, &def)))
}

/// Dials into a fleet at `addr` and serves jobs until it hangs up — the
/// `atim-worker --connect` entry point.
///
/// # Errors
/// Returns a message for connection failures and protocol violations.
pub fn worker_connect(addr: &str) -> Result<(), String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("connecting to fleet at {addr}: {e}"))?;
    run_worker(stream)
}

/// Listens on `addr` and serves fleets one connection at a time — the
/// `atim-worker --listen` entry point (for
/// [`FleetBackend::attach`](super::FleetBackend::attach)).  Each
/// connection re-configures the worker, so one process can serve fleets
/// with different specs sequentially.
///
/// Binding retries `AddrInUse` briefly: a worker restarted on the port of
/// a just-killed predecessor (the supervised-restart scenario) should win
/// the race against the old socket draining, not crash-loop.
///
/// # Errors
/// Returns a message when the address cannot be bound.
pub fn worker_listen(addr: &str) -> Result<(), String> {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let listener = loop {
        match TcpListener::bind(addr) {
            Ok(listener) => break listener,
            Err(e)
                if e.kind() == std::io::ErrorKind::AddrInUse
                    && std::time::Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("binding {addr}: {e}")),
        }
    };
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                if let Err(e) = run_worker(stream) {
                    eprintln!("atim-worker: connection ended with error: {e}");
                }
            }
            Err(e) => eprintln!("atim-worker: accept failed: {e}"),
        }
    }
    Ok(())
}
