//! Per-DPU kernel execution and the DPU cycle model.

use atim_tir::error::Result;
use atim_tir::eval::{CompiledProgram, CompiledRunner, ExecMode, MemoryStore};
use atim_tir::schedule::Lowered;

use crate::config::UpmemConfig;
use crate::stats::{CycleBreakdown, DpuCounters};

/// Result of running one DPU's kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DpuRun {
    /// Event counters collected during interpretation.
    pub counters: DpuCounters,
    /// Modelled execution cycles.
    pub cycles: f64,
    /// Cycle breakdown (issuable / idle-memory / idle-core).
    pub breakdown: CycleBreakdown,
    /// Dynamic instruction count used by the model.
    pub instructions: u64,
}

/// Total dynamic instructions implied by a counter set.
///
/// Every scalar ALU operation, WRAM access and DMA launch sequence costs
/// issue slots; branches and loop back-edges cost
/// [`UpmemConfig::branch_instrs`] / [`UpmemConfig::loop_iter_instrs`]
/// instructions because the in-order DPU has no branch prediction or
/// zero-overhead loops.
pub fn instruction_count(c: &DpuCounters, cfg: &UpmemConfig) -> u64 {
    c.alu_ops
        + c.wram_loads
        + c.wram_stores
        + c.mram_scalar_accesses
        + cfg.branch_instrs * c.branches
        + cfg.loop_iter_instrs * c.loop_iters
        + c.loop_enters
        + 4 * c.dma_requests
        + 2 * c.barriers
}

/// Cycles spent by the DMA engine serving this kernel's requests.
///
/// Direct scalar accesses to MRAM are charged as 8-byte DMA requests: the
/// DPU has no load path to MRAM, so un-cached schedules pay the full setup
/// cost per element — which is exactly why WRAM caching tile size matters so
/// much in Fig. 3(a).
pub fn dma_cycles(c: &DpuCounters, cfg: &UpmemConfig) -> f64 {
    let requests = c.dma_requests + c.mram_scalar_accesses;
    let bytes = c.dma_bytes + 8 * c.mram_scalar_accesses;
    requests as f64 * cfg.dma_setup_cycles as f64 + bytes as f64 / cfg.dma_bytes_per_cycle
}

/// Applies the DPU cycle model to a counter set.
///
/// The kernel time is bounded below by three resources:
///
/// * the single issue port (one instruction per cycle across all tasklets),
/// * the per-tasklet revolve interval (a tasklet issues at most once every
///   `issue_interval` cycles, so fewer than ~11 tasklets leave issue slots
///   empty — "idle core"),
/// * the DMA engine ("idle memory").
pub fn model_cycles(c: &DpuCounters, tasklets: i64, cfg: &UpmemConfig) -> DpuRun {
    let instructions = instruction_count(c, cfg);
    let issue = instructions as f64;
    let tasklets = tasklets.max(1) as f64;
    let revolve = (instructions as f64 / tasklets).ceil() * cfg.issue_interval as f64;
    let dma = dma_cycles(c, cfg);
    let cycles = issue.max(revolve).max(dma);
    let idle_memory = (dma - issue).clamp(0.0, cycles - issue);
    let idle_core = (cycles - issue - idle_memory).max(0.0);
    DpuRun {
        counters: *c,
        cycles,
        breakdown: CycleBreakdown {
            issuable: issue,
            idle_memory,
            idle_core,
        },
        instructions,
    }
}

/// Executes one DPU's kernel (functionally or timing-only) and applies the
/// cycle model.
///
/// `kernel` is the pre-lowered kernel body (compile it once per launch with
/// [`CompiledProgram::compile`] and reuse it for every DPU); `coords` are the
/// DPU's grid coordinates; `linear` its linear index used to select
/// MRAM/WRAM buffer instances.
///
/// # Errors
/// Propagates interpreter errors (which indicate lowering bugs).
pub fn run_dpu(
    store: &mut MemoryStore,
    lowered: &Lowered,
    kernel: &CompiledProgram,
    linear: i64,
    coords: &[i64],
    mode: ExecMode,
    cfg: &UpmemConfig,
) -> Result<DpuRun> {
    let mut counters = DpuCounters::default();
    {
        let mut runner = CompiledRunner::new(kernel);
        runner.set_dpu(linear);
        for (dim, coord) in lowered.grid.dims.iter().zip(coords) {
            runner.bind(&dim.var, *coord);
        }
        runner.run(store, &mut counters, mode)?;
    }
    Ok(model_cycles(&counters, lowered.kernel.tasklets, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_counters() -> DpuCounters {
        DpuCounters {
            alu_ops: 1000,
            wram_loads: 500,
            wram_stores: 200,
            branches: 0,
            loop_iters: 100,
            loop_enters: 10,
            dma_requests: 4,
            dma_bytes: 4096,
            ..Default::default()
        }
    }

    #[test]
    fn instruction_count_includes_branch_and_loop_overheads() {
        let cfg = UpmemConfig::default();
        let mut c = base_counters();
        let base = instruction_count(&c, &cfg);
        c.branches += 10;
        assert_eq!(instruction_count(&c, &cfg), base + 10 * cfg.branch_instrs);
    }

    #[test]
    fn more_tasklets_reduce_cycles_until_issue_bound() {
        let cfg = UpmemConfig::default();
        let c = base_counters();
        let one = model_cycles(&c, 1, &cfg);
        let eight = model_cycles(&c, 8, &cfg);
        let sixteen = model_cycles(&c, 16, &cfg);
        assert!(one.cycles > eight.cycles);
        assert!(eight.cycles >= sixteen.cycles);
        // With one tasklet the core is mostly idle.
        assert!(one.breakdown.idle_core > 0.0);
        // With >= issue_interval tasklets, the kernel becomes issue- or
        // DMA-bound.
        assert!(sixteen.breakdown.idle_core < one.breakdown.idle_core);
    }

    #[test]
    fn dma_heavy_kernels_show_memory_idle() {
        let cfg = UpmemConfig::default();
        let c = DpuCounters {
            alu_ops: 10,
            dma_requests: 1000,
            dma_bytes: 8 * 1000,
            ..Default::default()
        };
        let run = model_cycles(&c, 16, &cfg);
        assert!(run.breakdown.idle_memory > run.breakdown.issuable);
    }

    #[test]
    fn scalar_mram_access_is_expensive() {
        let cfg = UpmemConfig::default();
        let cached = DpuCounters {
            wram_loads: 1024,
            dma_requests: 4,
            dma_bytes: 4096,
            ..Default::default()
        };
        let uncached = DpuCounters {
            mram_scalar_accesses: 1024,
            ..Default::default()
        };
        let a = model_cycles(&cached, 16, &cfg);
        let b = model_cycles(&uncached, 16, &cfg);
        assert!(
            b.cycles > 5.0 * a.cycles,
            "element-wise MRAM access must be far slower than DMA + WRAM"
        );
    }

    #[test]
    fn breakdown_total_equals_cycles() {
        let cfg = UpmemConfig::default();
        let run = model_cycles(&base_counters(), 4, &cfg);
        assert!((run.breakdown.total() - run.cycles).abs() < 1e-6);
    }
}
