//! Host-CPU execution model used by the CPU-autotuned baseline.
//!
//! The tensor operations the paper evaluates (VA, RED, MTV, TTV, MMTV, GEVA,
//! GEMV) all have arithmetic intensity well below one FLOP per byte, so an
//! autotuned CPU implementation is DRAM-bandwidth bound for every size the
//! paper studies; for tiny tensors the kernel-launch/threading overhead
//! dominates instead.  A roofline model with a parallel-overhead term
//! captures both regimes, which is what produces the crossover the paper
//! reports (CPU wins at 4 MB, UPMEM wins at ≥64 MB, Fig. 9/10).

use atim_tir::compute::ComputeDef;

use crate::config::UpmemConfig;

/// Parameters of the modelled CPU execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuEstimate {
    /// Modelled execution time in seconds.
    pub time_s: f64,
    /// Whether the memory roofline (rather than compute) was the binding
    /// constraint.
    pub memory_bound: bool,
    /// Threads assumed.
    pub threads: usize,
}

/// Estimates the runtime of an autotuned multi-threaded CPU implementation of
/// `def` on the host described by `cfg`.
pub fn cpu_time(def: &ComputeDef, threads: usize, cfg: &UpmemConfig) -> CpuEstimate {
    let threads = threads.clamp(1, cfg.host_cores);
    let bytes = def.total_bytes() as f64;
    let flops = def.total_flops() as f64;
    let bw = (threads as f64 * cfg.host_thread_bw).min(cfg.host_mem_bw);
    let mem_time = bytes / bw;
    // Autotuned CPU code vectorizes well: assume 8-wide FMA per core.
    let compute_time = flops / (threads as f64 * cfg.host_core_flops * 8.0);
    // Thread fork/join and first-touch overhead.
    let overhead = 8.0e-6 + threads as f64 * 0.7e-6;
    let time = mem_time.max(compute_time) + overhead;
    CpuEstimate {
        time_s: time,
        memory_bound: mem_time >= compute_time,
        threads,
    }
}

/// Picks the best thread count for the workload (the "CPU-autotuned"
/// configuration): small workloads prefer fewer threads because of the
/// parallel overhead.
pub fn cpu_autotuned(def: &ComputeDef, cfg: &UpmemConfig) -> CpuEstimate {
    let mut best = cpu_time(def, 1, cfg);
    let mut t = 2;
    while t <= cfg.host_cores {
        let e = cpu_time(def, t, cfg);
        if e.time_s < best.time_s {
            best = e;
        }
        t *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_kernels_are_memory_bound() {
        let cfg = UpmemConfig::default();
        let def = ComputeDef::mtv("mtv", 4096, 4096);
        let e = cpu_autotuned(&def, &cfg);
        assert!(e.memory_bound);
        assert!(e.time_s > 0.0);
    }

    #[test]
    fn autotuned_uses_many_threads_for_large_tensors() {
        let cfg = UpmemConfig::default();
        let big = ComputeDef::va("va", 64 * 1024 * 1024);
        let small = ComputeDef::va("va", 1024);
        let eb = cpu_autotuned(&big, &cfg);
        let es = cpu_autotuned(&small, &cfg);
        assert!(eb.threads > es.threads);
        assert!(eb.time_s > es.time_s);
    }

    #[test]
    fn more_threads_never_help_beyond_socket_bandwidth() {
        let cfg = UpmemConfig::default();
        let def = ComputeDef::red("red", 16 * 1024 * 1024);
        let a = cpu_time(&def, cfg.host_cores, &cfg);
        let b = cpu_time(&def, cfg.host_cores * 4, &cfg);
        assert!((a.time_s - b.time_s).abs() < 1e-9);
    }
}
