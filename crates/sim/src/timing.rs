//! Host-side timing models: host↔DPU transfers and host loops.

use crate::config::UpmemConfig;
use crate::stats::{HostCounters, TransferCounters};
use atim_tir::stmt::TransferDir;

/// Models the latency of one direction of host↔DPU data movement.
///
/// * **Parallel (push) transfers**: the UPMEM SDK's `dpu_push_xfer` moves
///   data to all banks of every rank concurrently.  Latency is the data time
///   at the aggregate per-rank bandwidth plus one SDK call per transfer
///   *round* (a round services every DPU once).
/// * **Serial transfers**: `dpu_copy_to`/`from` one DPU at a time; latency is
///   data time at single-channel bandwidth plus per-call overhead, which is
///   what makes many small transfers so expensive.
pub fn transfer_time(
    dir: TransferDir,
    t: &TransferCounters,
    num_dpus: i64,
    cfg: &UpmemConfig,
) -> f64 {
    let (calls, bytes) = match dir {
        TransferDir::H2D => (t.h2d_calls, t.h2d_bytes),
        TransferDir::D2H => (t.d2h_calls, t.d2h_bytes),
    };
    if calls == 0 {
        return 0.0;
    }
    let rank_bw = match dir {
        TransferDir::H2D => cfg.h2d_rank_bw,
        TransferDir::D2H => cfg.d2h_rank_bw,
    };
    if t.all_parallel {
        let ranks_used = ((num_dpus as usize).div_ceil(cfg.dpus_per_rank)).max(1);
        let aggregate_bw = ranks_used as f64 * rank_bw;
        let rounds = (calls as f64 / num_dpus.max(1) as f64).ceil();
        bytes as f64 / aggregate_bw + rounds * cfg.transfer_call_overhead_s
    } else {
        bytes as f64 / cfg.serial_transfer_bw + calls as f64 * cfg.transfer_call_overhead_s
    }
}

/// Models the latency of a host-side loop (the final reduction of
/// hierarchical reductions).
///
/// The loop is memory-bandwidth bound for the streaming access pattern the
/// lowering generates; bandwidth scales with threads up to the socket limit.
pub fn host_loop_time(h: &HostCounters, threads: usize, cfg: &UpmemConfig) -> f64 {
    if h.loads + h.stores + h.ops == 0 {
        return 0.0;
    }
    let threads = threads.clamp(1, cfg.host_cores);
    let bytes = (h.loads + h.stores) as f64 * 4.0;
    let bw = (threads as f64 * cfg.host_thread_bw).min(cfg.host_mem_bw);
    let mem_time = bytes / bw;
    let compute_time = h.ops as f64 / (threads as f64 * cfg.host_core_flops);
    mem_time.max(compute_time) + 2.0e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::eval::Tracer;

    fn counters(calls: u64, bytes_per_call: u64, parallel: bool, dpus: i64) -> TransferCounters {
        let mut t = TransferCounters::default();
        for i in 0..calls {
            Tracer::host_transfer(
                &mut t,
                TransferDir::H2D,
                (i as i64) % dpus,
                bytes_per_call as usize,
                parallel,
            );
        }
        t
    }

    #[test]
    fn parallel_beats_serial_for_many_dpus() {
        let cfg = UpmemConfig::default();
        let dpus = 2048;
        let par = counters(2048, 64 * 1024, true, dpus);
        let ser = counters(2048, 64 * 1024, false, dpus);
        let tp = transfer_time(TransferDir::H2D, &par, dpus, &cfg);
        let ts = transfer_time(TransferDir::H2D, &ser, dpus, &cfg);
        assert!(
            tp < ts / 5.0,
            "parallel {tp} should be much faster than serial {ts}"
        );
    }

    #[test]
    fn d2h_is_slower_than_h2d() {
        let cfg = UpmemConfig::default();
        let mut t = TransferCounters::default();
        Tracer::host_transfer(&mut t, TransferDir::H2D, 0, 1 << 20, true);
        Tracer::host_transfer(&mut t, TransferDir::D2H, 0, 1 << 20, true);
        let h2d = transfer_time(TransferDir::H2D, &t, 64, &cfg);
        let d2h = transfer_time(TransferDir::D2H, &t, 64, &cfg);
        assert!(d2h > h2d);
    }

    #[test]
    fn many_small_calls_are_overhead_dominated() {
        let cfg = UpmemConfig::default();
        let dpus = 64;
        let few_big = counters(64, 8 * 1024, true, dpus);
        let many_small = counters(64 * 1024, 8, true, dpus);
        let a = transfer_time(TransferDir::H2D, &few_big, dpus, &cfg);
        let b = transfer_time(TransferDir::H2D, &many_small, dpus, &cfg);
        assert!(
            b > a * 2.0,
            "per-call overhead must dominate for tiny transfers ({b} vs {a})"
        );
    }

    #[test]
    fn zero_transfers_take_zero_time() {
        let cfg = UpmemConfig::default();
        let t = TransferCounters::default();
        assert_eq!(transfer_time(TransferDir::H2D, &t, 64, &cfg), 0.0);
        assert_eq!(host_loop_time(&HostCounters::default(), 4, &cfg), 0.0);
    }

    #[test]
    fn host_loop_scales_with_threads() {
        let cfg = UpmemConfig::default();
        let h = HostCounters {
            ops: 1_000_000,
            loads: 2_000_000,
            stores: 1_000_000,
            loop_iters: 1_000_000,
        };
        let one = host_loop_time(&h, 1, &cfg);
        let eight = host_loop_time(&h, 8, &cfg);
        assert!(eight < one);
        // Far beyond the socket there is no further speedup.
        let huge = host_loop_time(&h, 10_000, &cfg);
        let cores = host_loop_time(&h, cfg.host_cores, &cfg);
        assert!((huge - cores).abs() < 1e-9);
    }
}
