//! The simulated UPMEM machine: orchestrates transfers, kernel launches and
//! host reduction for a lowered program and produces an
//! [`ExecutionReport`].

use atim_tir::error::{Result, TirError};
use atim_tir::eval::{CompiledProgram, CompiledRunner, ExecMode, MemoryStore, Tracer};
use atim_tir::schedule::Lowered;
use atim_tir::stmt::{Stmt, TransferDir};

use crate::config::UpmemConfig;
use crate::dpu::{run_dpu, DpuRun};
use crate::stats::{ExecutionReport, HostCounters, TransferCounters};
use crate::timing::{host_loop_time, transfer_time};

/// How faithfully to execute the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Execute every DPU functionally and return the output tensor.  Use for
    /// correctness tests and small workloads.
    #[default]
    Full,
    /// Do not move tensor data; execute the host programs in timing-only
    /// mode and only a set of representative DPUs (first, middle, last) for
    /// the kernel, taking the slowest as the kernel latency.  Counts are
    /// exact for the simulated DPUs; the output tensor is not produced.
    /// Use for the large benchmark shapes.
    ///
    /// Inherits the affine-guards-only contract of
    /// [`ExecMode::TimingOnly`]: loads yield `0.0`, so only programs free
    /// of data-dependent control flow (everything the schedule lowering
    /// emits) count identically to [`SimMode::Full`].
    TimingOnly,
}

/// Result of simulating one offloaded execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The output tensor (present in [`SimMode::Full`] only).
    pub output: Option<Vec<f32>>,
    /// Timing and profiling report.
    pub report: ExecutionReport,
}

/// Environment variable gating the bytecode fast path (optimizer + loop
/// summarizer).  Enabled by default; set to `0` (or `false`/`off`/`no`) to
/// execute the unoptimized bytecode — e.g. to validate that both paths agree
/// on latencies.
pub const FASTPATH_ENV: &str = "ATIM_SIM_FASTPATH";

/// Whether `ATIM_SIM_FASTPATH` currently enables the fast path (the default
/// when unset).
pub fn fastpath_from_env() -> bool {
    match std::env::var(FASTPATH_ENV) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

/// The simulated UPMEM server.
#[derive(Debug, Clone)]
pub struct UpmemMachine {
    config: UpmemConfig,
    fastpath: bool,
}

impl Default for UpmemMachine {
    fn default() -> Self {
        UpmemMachine::new(UpmemConfig::default())
    }
}

impl UpmemMachine {
    /// Creates a machine with the given hardware configuration; the bytecode
    /// fast path defaults from [`FASTPATH_ENV`].
    pub fn new(config: UpmemConfig) -> Self {
        UpmemMachine::with_fastpath(config, fastpath_from_env())
    }

    /// Creates a machine with an explicit fast-path setting.
    pub fn with_fastpath(config: UpmemConfig, fastpath: bool) -> Self {
        UpmemMachine { config, fastpath }
    }

    /// Whether programs run through the optimized bytecode.
    pub fn fastpath(&self) -> bool {
        self.fastpath
    }

    /// Enables or disables the bytecode fast path.
    pub fn set_fastpath(&mut self, fastpath: bool) {
        self.fastpath = fastpath;
    }

    /// The machine's configuration.
    pub fn config(&self) -> &UpmemConfig {
        &self.config
    }

    /// Runs a lowered program.
    ///
    /// In [`SimMode::Full`], `inputs` must contain one vector per declared
    /// input; in [`SimMode::TimingOnly`] the inputs are ignored and may be
    /// empty.
    ///
    /// # Errors
    /// Fails if the program uses more DPUs than the machine has, or on
    /// interpreter errors (which indicate lowering bugs).
    pub fn run(&self, lowered: &Lowered, inputs: &[Vec<f32>], mode: SimMode) -> Result<SimResult> {
        let num_dpus = lowered.grid.num_dpus();
        if num_dpus > self.config.total_dpus() as i64 {
            return Err(TirError::Internal(format!(
                "schedule uses {num_dpus} DPUs but the machine has {}",
                self.config.total_dpus()
            )));
        }

        let exec_mode = match mode {
            SimMode::Full => ExecMode::Functional,
            SimMode::TimingOnly => ExecMode::TimingOnly,
        };

        let mut store = MemoryStore::new();
        if mode == SimMode::Full {
            if inputs.len() != lowered.global_inputs.len() {
                return Err(TirError::Internal(format!(
                    "expected {} inputs, got {}",
                    lowered.global_inputs.len(),
                    inputs.len()
                )));
            }
            for (buf, data) in lowered.global_inputs.iter().zip(inputs) {
                store.alloc_with(buf, 0, data);
            }
            store.alloc(&lowered.global_output, 0);
            if let Some(p) = &lowered.partial_output {
                store.alloc(p, 0);
            }
            for (linear, _) in lowered.grid.enumerate() {
                for tile in &lowered.mram_inputs {
                    store.alloc(&tile.buf, linear);
                }
                store.alloc(&lowered.mram_output.buf, linear);
            }
        }

        // Every program is pre-lowered to a flat instruction buffer once per
        // launch; the kernel program in particular is reused across DPUs.
        // With the fast path on, the buffer additionally goes through the
        // event-count-preserving bytecode optimizer, whose loop summaries
        // collapse timing-only iterations into bulk events (the knob is
        // [`FASTPATH_ENV`]; functional runs use the same optimized program
        // but execute summarized loops normally).
        let prepare = |stmt: &Stmt| {
            let program = CompiledProgram::compile(stmt);
            if self.fastpath {
                program.optimize()
            } else {
                program
            }
        };
        let run_flat = |stmt: &Stmt, store: &mut MemoryStore, tracer: &mut dyn Tracer| {
            CompiledRunner::new(&prepare(stmt)).run(store, tracer, exec_mode)
        };

        // --- Host -> DPU transfers ------------------------------------------
        // Constant tensors (weights) are loaded once at setup time and are
        // reported separately from the per-launch transfer cost.
        let mut setup_counters = TransferCounters::default();
        run_flat(&lowered.h2d_setup, &mut store, &mut setup_counters)?;
        let setup_h2d_s = transfer_time(TransferDir::H2D, &setup_counters, num_dpus, &self.config);
        let mut h2d_counters = TransferCounters::default();
        run_flat(&lowered.h2d, &mut store, &mut h2d_counters)?;
        let h2d_s = transfer_time(TransferDir::H2D, &h2d_counters, num_dpus, &self.config);

        // --- Kernel execution -------------------------------------------------
        let kernel = prepare(&lowered.kernel.body);
        let all = lowered.grid.enumerate();
        let selected: Vec<&(i64, Vec<i64>)> = match mode {
            SimMode::Full => all.iter().collect(),
            SimMode::TimingOnly => {
                let n = all.len();
                let mut picks = vec![0usize];
                if n > 2 {
                    picks.push(n / 2);
                }
                if n > 1 {
                    picks.push(n - 1);
                }
                picks.dedup();
                picks.iter().map(|&i| &all[i]).collect()
            }
        };
        let mut slowest = DpuRun::default();
        for (linear, coords) in selected {
            let run = run_dpu(
                &mut store,
                lowered,
                &kernel,
                *linear,
                coords,
                exec_mode,
                &self.config,
            )?;
            if run.cycles > slowest.cycles {
                slowest = run;
            }
        }
        let kernel_s = slowest.cycles * self.config.cycle_time() + self.config.launch_overhead_s;

        // --- DPU -> host transfers ---------------------------------------------
        let mut d2h_counters = TransferCounters::default();
        run_flat(&lowered.d2h, &mut store, &mut d2h_counters)?;
        let d2h_s = transfer_time(TransferDir::D2H, &d2h_counters, num_dpus, &self.config);

        // --- Host final reduction ------------------------------------------------
        let mut reduce_s = 0.0;
        if let Some(reduce) = &lowered.host_reduce {
            let mut host_counters = HostCounters::default();
            run_flat(reduce, &mut store, &mut host_counters)?;
            reduce_s = host_loop_time(&host_counters, lowered.host_threads, &self.config);
        }

        let output = if mode == SimMode::Full {
            store
                .read_all(&lowered.global_output, 0)
                .map(|s| s.to_vec())
        } else {
            None
        };

        let report = ExecutionReport {
            h2d_s,
            setup_h2d_s,
            kernel_s,
            d2h_s,
            reduce_s,
            num_dpus,
            tasklets: lowered.kernel.tasklets,
            instructions: slowest.instructions,
            dpu: slowest.counters,
            breakdown: slowest.breakdown,
            h2d_bytes: h2d_counters.h2d_bytes + setup_counters.h2d_bytes,
            d2h_bytes: d2h_counters.d2h_bytes,
            wram_bytes: lowered.kernel.wram_bytes,
        };
        Ok(SimResult { output, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_tir::compute::ComputeDef;
    use atim_tir::schedule::{Attach, Binding, Schedule};

    fn inputs_for(def: &ComputeDef) -> Vec<Vec<f32>> {
        (0..def.inputs.len())
            .map(|t| {
                (0..def.input_len(t))
                    .map(|i| ((i * 3 + t) % 9) as f32 - 4.0)
                    .collect()
            })
            .collect()
    }

    fn mtv_schedule(
        m: i64,
        k: i64,
        dpus_i: i64,
        dpus_k: i64,
        tasklets: i64,
        cache: i64,
    ) -> Schedule {
        let def = ComputeDef::mtv("mtv", m, k);
        let mut sch = Schedule::new(def);
        let i = sch.loops_of_axis(0)[0];
        let kk = sch.loops_of_axis(1)[0];
        let (i_dpu, i_in) = sch.split(i, (m + dpus_i - 1) / dpus_i).unwrap();
        let (k_dpu, k_in) = sch.split(kk, (k + dpus_k - 1) / dpus_k).unwrap();
        sch.rfactor(k_dpu).unwrap();
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        sch.bind(k_dpu, Binding::DpuY).unwrap();
        let (i_t, i_c) = sch
            .split(i_in, ((m + dpus_i - 1) / dpus_i + tasklets - 1) / tasklets)
            .unwrap();
        sch.bind(i_t, Binding::Tasklet).unwrap();
        let (k_o, k_i) = sch.split(k_in, cache).unwrap();
        sch.reorder(&[i_dpu, k_dpu, i_t, i_c, k_o, k_i]).unwrap();
        sch.cache_read(0, Attach::At(k_o)).unwrap();
        sch.cache_read(1, Attach::At(k_o)).unwrap();
        sch.cache_write(Attach::At(i_c)).unwrap();
        sch.parallel_host(8);
        sch
    }

    #[test]
    fn full_simulation_matches_reference_and_reports_time() {
        let machine = UpmemMachine::new(UpmemConfig::small());
        let sch = mtv_schedule(32, 64, 4, 2, 2, 16);
        let def = sch.def().clone();
        let lowered = sch.lower().unwrap();
        let inputs = inputs_for(&def);
        let result = machine.run(&lowered, &inputs, SimMode::Full).unwrap();
        let expect = def.reference(&inputs);
        let got = result.output.unwrap();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-2, "{g} vs {e}");
        }
        let r = &result.report;
        assert!(r.kernel_s > 0.0);
        assert!(r.h2d_s > 0.0);
        assert!(r.d2h_s > 0.0);
        assert!(r.reduce_s > 0.0);
        assert_eq!(r.num_dpus, 8);
        assert!(r.instructions > 0);
        assert!(r.h2d_bytes > 0);
    }

    #[test]
    fn timing_only_mode_agrees_with_full_mode_on_kernel_time() {
        let machine = UpmemMachine::new(UpmemConfig::small());
        // Aligned shapes: every DPU does identical work, so the sampled
        // timing must match the exhaustive one exactly.
        let sch = mtv_schedule(32, 64, 4, 2, 2, 16);
        let def = sch.def().clone();
        let lowered = sch.lower().unwrap();
        let inputs = inputs_for(&def);
        let full = machine.run(&lowered, &inputs, SimMode::Full).unwrap();
        let fast = machine.run(&lowered, &[], SimMode::TimingOnly).unwrap();
        assert!(fast.output.is_none());
        let a = full.report.kernel_s;
        let b = fast.report.kernel_s;
        assert!((a - b).abs() / a < 1e-9, "kernel times differ: {a} vs {b}");
        assert_eq!(full.report.h2d_bytes, fast.report.h2d_bytes);
    }

    /// The acceptance pin of the bytecode fast path: identical reports (all
    /// latency components, counters and byte totals) with the optimizer +
    /// summarizer on and off — on aligned shapes, misaligned shapes (whose
    /// guarded kernels exercise hoisting and the summarizer fallback) and in
    /// both simulation modes.
    #[test]
    fn fastpath_reports_are_bit_identical_to_the_slow_path() {
        for (m, k) in [(32, 64), (70, 90), (33, 47)] {
            let sch = mtv_schedule(m, k, 4, 2, 2, 16);
            let def = sch.def().clone();
            let lowered = sch.lower().unwrap();
            let inputs = inputs_for(&def);
            let slow = UpmemMachine::with_fastpath(UpmemConfig::small(), false);
            let fast = UpmemMachine::with_fastpath(UpmemConfig::small(), true);
            for mode in [SimMode::Full, SimMode::TimingOnly] {
                let ins: &[Vec<f32>] = if mode == SimMode::Full { &inputs } else { &[] };
                let a = slow.run(&lowered, ins, mode).unwrap();
                let b = fast.run(&lowered, ins, mode).unwrap();
                assert_eq!(
                    a.report, b.report,
                    "fastpath report diverges for {m}x{k} in {mode:?}"
                );
                assert_eq!(a.output, b.output, "fastpath output diverges for {m}x{k}");
            }
        }
    }

    #[test]
    fn fastpath_env_parsing_defaults_on() {
        // The env itself is process-global; only exercise the parser via the
        // constructor default and explicit settings.
        let mut machine = UpmemMachine::with_fastpath(UpmemConfig::small(), true);
        assert!(machine.fastpath());
        machine.set_fastpath(false);
        assert!(!machine.fastpath());
    }

    #[test]
    fn too_many_dpus_is_an_error() {
        let machine = UpmemMachine::new(UpmemConfig::small()); // 16 DPUs
        let def = ComputeDef::va("va", 1 << 14);
        let mut sch = Schedule::new(def);
        let i = sch.loop_refs()[0];
        let (i_dpu, _) = sch.split(i, 8).unwrap(); // 2048 DPUs
        sch.bind(i_dpu, Binding::DpuX).unwrap();
        let lowered = sch.lower().unwrap();
        assert!(machine.run(&lowered, &[], SimMode::TimingOnly).is_err());
    }

    #[test]
    fn wrong_input_count_is_an_error() {
        let machine = UpmemMachine::new(UpmemConfig::small());
        let sch = mtv_schedule(16, 16, 2, 2, 2, 4);
        let lowered = sch.lower().unwrap();
        assert!(machine.run(&lowered, &[], SimMode::Full).is_err());
    }

    #[test]
    fn more_tasklets_speed_up_the_kernel() {
        let machine = UpmemMachine::new(UpmemConfig::small());
        let slow = mtv_schedule(64, 64, 2, 1, 1, 16);
        let fast = mtv_schedule(64, 64, 2, 1, 8, 16);
        let r1 = machine
            .run(&slow.lower().unwrap(), &[], SimMode::TimingOnly)
            .unwrap();
        let r2 = machine
            .run(&fast.lower().unwrap(), &[], SimMode::TimingOnly)
            .unwrap();
        assert!(r2.report.kernel_s < r1.report.kernel_s);
    }
}
