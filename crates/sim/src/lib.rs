//! # atim-sim — UPMEM DRAM-PIM functional + timing simulator
//!
//! The ATiM paper evaluates on a physical UPMEM server (2048 DPUs across 32
//! ranks of DDR4-2400 PIM DIMMs).  This crate substitutes that hardware with
//! a simulator that:
//!
//! * **executes** lowered host/kernel programs functionally (via the
//!   `atim-tir` interpreter), so results can be checked against reference
//!   implementations, and
//! * **times** the same execution with a cost model that captures the
//!   mechanisms the paper's analysis rests on:
//!   - the DPU is a 14-stage in-order multithreaded core: one instruction
//!     per cycle across tasklets, and each tasklet can issue at most once
//!     every [`config::UpmemConfig::issue_interval`] cycles (so ≥11 tasklets
//!     are needed to saturate the pipeline),
//!   - there is no branch prediction, so every boundary check costs real
//!     issue slots (§3, Fig. 4),
//!   - WRAM accesses are single-cycle, while MRAM is only reachable through
//!     DMA transfers with a fixed setup cost plus a per-byte cost, making
//!     small transfers setup-dominated (§7.3, Fig. 13),
//!   - host↔DPU transfers go through the host CPU's memory channels, with a
//!     per-SDK-call overhead and per-rank bandwidth that only parallel
//!     (push) transfers can aggregate (§2.1),
//!   - the host CPU is modelled as a memory-bandwidth-limited multicore for
//!     final reductions and the CPU baseline.
//!
//! The absolute latencies differ from the authors' testbed, but the relative
//! behaviour — who wins, by what factor, where crossovers fall — follows the
//! same mechanics.
//!
//! # Example
//!
//! ```
//! use atim_sim::{SimMode, UpmemConfig, UpmemMachine};
//! use atim_tir::compute::ComputeDef;
//! use atim_tir::schedule::Schedule;
//!
//! // Lower a vector addition and execute it functionally on a small box.
//! let def = ComputeDef::va("va", 64);
//! let lowered = Schedule::new(def).lower().unwrap();
//! let machine = UpmemMachine::new(UpmemConfig::small());
//! let inputs = vec![vec![1.0f32; 64], vec![2.0f32; 64]];
//! let result = machine.run(&lowered, &inputs, SimMode::Full).unwrap();
//! assert_eq!(result.output.unwrap()[0], 3.0);
//! assert!(result.report.total_ms() > 0.0);
//! ```

pub mod config;
pub mod cpu;
pub mod dpu;
pub mod machine;
pub mod stats;
pub mod timing;

pub use config::{PimTarget, UpmemConfig};
pub use machine::{fastpath_from_env, SimMode, SimResult, UpmemMachine, FASTPATH_ENV};
pub use stats::{CycleBreakdown, DpuCounters, ExecutionReport};
