//! Hardware configuration of the simulated UPMEM system.

/// The DRAM-PIM target family.
///
/// Only [`PimTarget::Upmem`] is implemented; the enum is the extension point
/// discussed in the paper's §8 for MAC-based DRAM-PIM (e.g. HBM-PIM), which
/// would replace the per-bank RISC core model with per-PU vector intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PimTarget {
    /// UPMEM DDR4 PIM: one general-purpose DPU per 64 MB bank.
    #[default]
    Upmem,
}

/// Configuration of the simulated UPMEM server and its host.
///
/// Defaults follow the paper's evaluation platform: a dual-socket Xeon Gold
/// 5220R host with 32 ranks of DDR4-2400 PIM DIMMs (64 DPUs per rank, 2048
/// DPUs total) running at 350 MHz.
#[derive(Debug, Clone, PartialEq)]
pub struct UpmemConfig {
    /// PIM family being simulated.
    pub target: PimTarget,
    /// Number of PIM-enabled ranks.
    pub ranks: usize,
    /// DPUs (banks) per rank.
    pub dpus_per_rank: usize,
    /// Maximum tasklets (hardware threads) per DPU.
    pub max_tasklets: usize,
    /// WRAM scratchpad size per DPU in bytes.
    pub wram_bytes: usize,
    /// IRAM size per DPU in bytes (used only by the verifier's kernel-size
    /// estimate).
    pub iram_bytes: usize,
    /// MRAM bank size per DPU in bytes.
    pub mram_bytes: usize,
    /// DPU clock frequency in Hz.
    pub dpu_freq_hz: f64,
    /// Minimum cycles between two instructions of the same tasklet (pipeline
    /// revolve interval).
    pub issue_interval: u64,
    /// Fixed cycles charged per MRAM↔WRAM DMA request (instruction sequence +
    /// engine startup).
    pub dma_setup_cycles: u64,
    /// DMA streaming throughput in bytes per DPU cycle once started.
    pub dma_bytes_per_cycle: f64,
    /// Extra instructions charged per conditional branch (compare + jump).
    pub branch_instrs: u64,
    /// Instructions charged per loop iteration (increment + back-edge).
    pub loop_iter_instrs: u64,
    /// Fixed host-side overhead per transfer SDK call, in seconds.
    pub transfer_call_overhead_s: f64,
    /// Host→DPU bandwidth per rank for parallel (push) transfers, bytes/s.
    pub h2d_rank_bw: f64,
    /// DPU→host bandwidth per rank for parallel (push) transfers, bytes/s.
    pub d2h_rank_bw: f64,
    /// Bandwidth of serial (single-DPU-at-a-time) transfers, bytes/s.
    pub serial_transfer_bw: f64,
    /// Host CPU physical cores (both sockets).
    pub host_cores: usize,
    /// Aggregate host DRAM bandwidth, bytes/s.
    pub host_mem_bw: f64,
    /// Per-thread sustainable host memory bandwidth, bytes/s.
    pub host_thread_bw: f64,
    /// Host scalar throughput per core, FLOP/s (used when a host loop is
    /// compute-bound rather than memory-bound).
    pub host_core_flops: f64,
    /// Fixed overhead per kernel launch (host→DPU control), seconds.
    pub launch_overhead_s: f64,
}

impl Default for UpmemConfig {
    fn default() -> Self {
        UpmemConfig {
            target: PimTarget::Upmem,
            ranks: 32,
            dpus_per_rank: 64,
            max_tasklets: 24,
            wram_bytes: 64 * 1024,
            iram_bytes: 24 * 1024,
            mram_bytes: 64 * 1024 * 1024,
            dpu_freq_hz: 350.0e6,
            issue_interval: 11,
            dma_setup_cycles: 77,
            dma_bytes_per_cycle: 2.0,
            branch_instrs: 2,
            loop_iter_instrs: 2,
            transfer_call_overhead_s: 2.0e-6,
            h2d_rank_bw: 0.30e9,
            d2h_rank_bw: 0.16e9,
            serial_transfer_bw: 0.30e9,
            host_cores: 48,
            host_mem_bw: 110.0e9,
            host_thread_bw: 9.0e9,
            host_core_flops: 6.0e9,
            launch_overhead_s: 15.0e-6,
        }
    }
}

impl UpmemConfig {
    /// Total number of DPUs in the system.
    pub fn total_dpus(&self) -> usize {
        self.ranks * self.dpus_per_rank
    }

    /// A smaller configuration that is convenient for unit tests (fewer DPUs,
    /// same per-DPU characteristics).
    pub fn small() -> Self {
        UpmemConfig {
            ranks: 2,
            dpus_per_rank: 8,
            ..Self::default()
        }
    }

    /// Seconds per DPU cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.dpu_freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = UpmemConfig::default();
        assert_eq!(c.total_dpus(), 2048);
        assert_eq!(c.max_tasklets, 24);
        assert_eq!(c.wram_bytes, 64 * 1024);
        assert_eq!(c.mram_bytes, 64 * 1024 * 1024);
        assert!(c.cycle_time() > 0.0);
    }

    #[test]
    fn small_config_shrinks_dpu_count_only() {
        let c = UpmemConfig::small();
        assert_eq!(c.total_dpus(), 16);
        assert_eq!(c.wram_bytes, UpmemConfig::default().wram_bytes);
    }
}
