//! Execution counters and reports.

use atim_tir::buffer::MemScope;
use atim_tir::eval::{BulkEvents, Tracer};
use atim_tir::stmt::TransferDir;

/// Raw event counters collected while interpreting a DPU kernel.
///
/// This is the simulator's [`Tracer`] implementation: the very same
/// interpretation that produces functional results also produces these
/// counts, so the timing model always measures the program that ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpuCounters {
    /// Scalar ALU operations (adds, multiplies, compares, address math).
    pub alu_ops: u64,
    /// WRAM loads.
    pub wram_loads: u64,
    /// WRAM stores.
    pub wram_stores: u64,
    /// Direct (non-DMA) accesses to MRAM-scope buffers.  The real DPU cannot
    /// load MRAM directly, so these are charged as tiny 8-byte DMA requests.
    pub mram_scalar_accesses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Loop iterations executed.
    pub loop_iters: u64,
    /// Loop headers entered.
    pub loop_enters: u64,
    /// Explicit MRAM↔WRAM DMA requests.
    pub dma_requests: u64,
    /// Total bytes moved by explicit DMA requests.
    pub dma_bytes: u64,
    /// Tasklet barriers.
    pub barriers: u64,
}

impl DpuCounters {
    /// Merges another counter set into this one (used to aggregate across
    /// DPUs or kernel phases).
    pub fn merge(&mut self, other: &DpuCounters) {
        self.alu_ops += other.alu_ops;
        self.wram_loads += other.wram_loads;
        self.wram_stores += other.wram_stores;
        self.mram_scalar_accesses += other.mram_scalar_accesses;
        self.branches += other.branches;
        self.loop_iters += other.loop_iters;
        self.loop_enters += other.loop_enters;
        self.dma_requests += other.dma_requests;
        self.dma_bytes += other.dma_bytes;
        self.barriers += other.barriers;
    }
}

impl Tracer for DpuCounters {
    fn alu(&mut self, n: usize) {
        self.alu_ops += n as u64;
    }
    fn load(&mut self, scope: MemScope, _bytes: usize) {
        match scope {
            MemScope::Wram => self.wram_loads += 1,
            MemScope::Mram => self.mram_scalar_accesses += 1,
            // Kernels never touch Global/HostLocal buffers; count them as
            // WRAM so malformed programs still get a finite estimate.
            _ => self.wram_loads += 1,
        }
    }
    fn store(&mut self, scope: MemScope, _bytes: usize) {
        match scope {
            MemScope::Wram => self.wram_stores += 1,
            MemScope::Mram => self.mram_scalar_accesses += 1,
            _ => self.wram_stores += 1,
        }
    }
    fn branch(&mut self, _taken: bool) {
        self.branches += 1;
    }
    fn loop_enter(&mut self) {
        self.loop_enters += 1;
    }
    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }
    fn dma(&mut self, bytes: usize) {
        self.dma_requests += 1;
        self.dma_bytes += bytes as u64;
    }
    fn barrier(&mut self) {
        self.barriers += 1;
    }
    fn bulk(&mut self, events: &BulkEvents) {
        self.alu_ops += events.alu;
        for &(scope, _, count) in &events.loads {
            match scope {
                MemScope::Mram => self.mram_scalar_accesses += count,
                _ => self.wram_loads += count,
            }
        }
        for &(scope, _, count) in &events.stores {
            match scope {
                MemScope::Mram => self.mram_scalar_accesses += count,
                _ => self.wram_stores += count,
            }
        }
        self.branches += events.branches;
        self.loop_enters += events.loop_enters;
        self.loop_iters += events.loop_iters;
        self.dma_requests += events.dma_requests;
        self.dma_bytes += events.dma_bytes;
        self.barriers += events.barriers;
    }
}

/// Counters for the host transfer programs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferCounters {
    /// Host→DPU SDK calls.
    pub h2d_calls: u64,
    /// Host→DPU bytes.
    pub h2d_bytes: u64,
    /// DPU→host SDK calls.
    pub d2h_calls: u64,
    /// DPU→host bytes.
    pub d2h_bytes: u64,
    /// Maximum bytes moved to/from a single DPU (bounds parallel transfers).
    pub max_per_dpu_bytes: u64,
    /// Whether every transfer used the rank-parallel push path.
    pub all_parallel: bool,
    /// Whether any transfer was seen at all.
    pub any: bool,
    /// Host-loop iterations executed while generating the transfers (address
    /// generation cost on the host).
    pub host_loop_iters: u64,
    per_dpu: std::collections::HashMap<i64, u64>,
}

impl Tracer for TransferCounters {
    fn host_transfer(&mut self, dir: TransferDir, dpu: i64, bytes: usize, parallel: bool) {
        if !self.any {
            self.all_parallel = true;
            self.any = true;
        }
        self.all_parallel &= parallel;
        match dir {
            TransferDir::H2D => {
                self.h2d_calls += 1;
                self.h2d_bytes += bytes as u64;
            }
            TransferDir::D2H => {
                self.d2h_calls += 1;
                self.d2h_bytes += bytes as u64;
            }
        }
        let e = self.per_dpu.entry(dpu).or_insert(0);
        *e += bytes as u64;
        if *e > self.max_per_dpu_bytes {
            self.max_per_dpu_bytes = *e;
        }
    }
    fn loop_iter(&mut self) {
        self.host_loop_iters += 1;
    }
    fn bulk(&mut self, events: &BulkEvents) {
        self.host_loop_iters += events.loop_iters;
    }
}

/// Counters for host-side loops (final reduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostCounters {
    /// Scalar operations executed.
    pub ops: u64,
    /// Loads (from any scope).
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Loop iterations.
    pub loop_iters: u64,
}

impl Tracer for HostCounters {
    fn alu(&mut self, n: usize) {
        self.ops += n as u64;
    }
    fn load(&mut self, _scope: MemScope, _bytes: usize) {
        self.loads += 1;
    }
    fn store(&mut self, _scope: MemScope, _bytes: usize) {
        self.stores += 1;
    }
    fn loop_iter(&mut self) {
        self.loop_iters += 1;
    }
    fn bulk(&mut self, events: &BulkEvents) {
        self.ops += events.alu;
        for &(_, _, count) in &events.loads {
            self.loads += count;
        }
        for &(_, _, count) in &events.stores {
            self.stores += count;
        }
        self.loop_iters += events.loop_iters;
    }
}

/// Cycle breakdown of a single DPU's kernel execution, in the style of the
/// paper's Fig. 13 (uPIMulator categories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleBreakdown {
    /// Cycles in which an instruction was issued.
    pub issuable: f64,
    /// Cycles stalled waiting on the DMA engine / MRAM.
    pub idle_memory: f64,
    /// Cycles lost to insufficient tasklet parallelism (pipeline revolve).
    pub idle_core: f64,
}

impl CycleBreakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.issuable + self.idle_memory + self.idle_core
    }

    /// Fraction of cycles in each category `(issuable, idle_mem, idle_core)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1e-12);
        (self.issuable / t, self.idle_memory / t, self.idle_core / t)
    }
}

/// Timing and profiling results of one full offloaded execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionReport {
    /// Host→DPU transfer time for per-launch (non-constant) tensors
    /// (seconds).
    pub h2d_s: f64,
    /// One-time host→DPU transfer time for constant tensors (weights).  Not
    /// included in [`ExecutionReport::total_s`] because it is amortized
    /// across launches, matching the paper's treatment (§5.4).
    pub setup_h2d_s: f64,
    /// Kernel execution time: the slowest DPU (seconds).
    pub kernel_s: f64,
    /// DPU→host transfer time (seconds).
    pub d2h_s: f64,
    /// Host final-reduction time (seconds).
    pub reduce_s: f64,
    /// Number of DPUs used.
    pub num_dpus: i64,
    /// Tasklets per DPU.
    pub tasklets: i64,
    /// Total dynamic instructions on the slowest DPU.
    pub instructions: u64,
    /// Counters of the slowest DPU.
    pub dpu: DpuCounters,
    /// Cycle breakdown of the slowest DPU.
    pub breakdown: CycleBreakdown,
    /// Total bytes moved host→DPU.
    pub h2d_bytes: u64,
    /// Total bytes moved DPU→host.
    pub d2h_bytes: u64,
    /// Estimated per-DPU WRAM usage in bytes.
    pub wram_bytes: usize,
}

impl ExecutionReport {
    /// End-to-end latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.h2d_s + self.kernel_s + self.d2h_s + self.reduce_s
    }

    /// End-to-end latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_s() * 1e3
    }

    /// Kernel-only latency in milliseconds.
    pub fn kernel_ms(&self) -> f64 {
        self.kernel_s * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = DpuCounters {
            alu_ops: 5,
            dma_requests: 1,
            dma_bytes: 64,
            ..Default::default()
        };
        let b = DpuCounters {
            alu_ops: 3,
            branches: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.alu_ops, 8);
        assert_eq!(a.branches, 2);
        assert_eq!(a.dma_bytes, 64);
    }

    #[test]
    fn tracer_routes_scopes() {
        let mut c = DpuCounters::default();
        Tracer::load(&mut c, MemScope::Wram, 4);
        Tracer::load(&mut c, MemScope::Mram, 4);
        Tracer::store(&mut c, MemScope::Mram, 4);
        assert_eq!(c.wram_loads, 1);
        assert_eq!(c.mram_scalar_accesses, 2);
    }

    #[test]
    fn transfer_counters_track_direction_and_parallelism() {
        let mut t = TransferCounters::default();
        Tracer::host_transfer(&mut t, TransferDir::H2D, 0, 64, true);
        Tracer::host_transfer(&mut t, TransferDir::H2D, 1, 128, true);
        Tracer::host_transfer(&mut t, TransferDir::D2H, 1, 32, false);
        assert_eq!(t.h2d_calls, 2);
        assert_eq!(t.h2d_bytes, 192);
        assert_eq!(t.d2h_bytes, 32);
        assert_eq!(t.max_per_dpu_bytes, 160);
        assert!(!t.all_parallel);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = CycleBreakdown {
            issuable: 50.0,
            idle_memory: 30.0,
            idle_core: 20.0,
        };
        let (a, m, c) = b.fractions();
        assert!((a + m + c - 1.0).abs() < 1e-9);
        assert_eq!(b.total(), 100.0);
    }

    #[test]
    fn report_total() {
        let r = ExecutionReport {
            h2d_s: 0.001,
            kernel_s: 0.002,
            d2h_s: 0.003,
            reduce_s: 0.004,
            ..Default::default()
        };
        assert!((r.total_s() - 0.010).abs() < 1e-12);
        assert!((r.total_ms() - 10.0).abs() < 1e-9);
    }
}
