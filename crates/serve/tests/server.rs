//! Server integration suite: concurrency, dedup, and the cache-hit fast
//! path, exercised over real TCP connections.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atim_autotune::tuner::{Cancellation, MeasureOutcome};
use atim_autotune::Trace;
use atim_core::{AnalyticBackend, Backend, CompileOptions, CompiledModule, Session};
use atim_serve::{serve, Client, ServeOptions, TuneRequest};
use atim_sim::{ExecutionReport, UpmemConfig};
use atim_tir::compute::ComputeDef;
use atim_tir::error::Result as TirResult;

/// Delegates to the analytic backend, but blocks every measurement batch
/// until the test opens the gate — so a search stays reliably in flight
/// while concurrent duplicate requests pile up behind it.
struct GatedBackend {
    inner: AnalyticBackend,
    open: AtomicBool,
    batches: AtomicUsize,
}

impl GatedBackend {
    fn new() -> Arc<Self> {
        Arc::new(GatedBackend {
            inner: AnalyticBackend::new(UpmemConfig::default()),
            open: AtomicBool::new(false),
            batches: AtomicUsize::new(0),
        })
    }

    fn release(&self) {
        self.open.store(true, Ordering::SeqCst);
    }

    fn wait_for_gate(&self) {
        let start = Instant::now();
        while !self.open.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "test gate never opened"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Backend for GatedBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn hardware(&self) -> &UpmemConfig {
        self.inner.hardware()
    }
    fn compile_options(&self) -> CompileOptions {
        self.inner.compile_options()
    }
    fn time(&self, module: &CompiledModule) -> TirResult<ExecutionReport> {
        self.inner.time(module)
    }
    fn execute(
        &self,
        module: &CompiledModule,
        inputs: &[Vec<f32>],
    ) -> TirResult<atim_core::ExecutedRun> {
        self.inner.execute(module, inputs)
    }
    fn measure(&self, trace: &Trace, def: &ComputeDef) -> Option<f64> {
        self.wait_for_gate();
        self.inner.measure(trace, def)
    }
    fn measure_batch(&self, traces: &[Trace], def: &ComputeDef) -> Vec<Option<f64>> {
        self.wait_for_gate();
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.inner.measure_batch(traces, def)
    }
    fn measure_batch_cancellable(
        &self,
        traces: &[Trace],
        def: &ComputeDef,
        cancel: &Cancellation,
    ) -> Vec<MeasureOutcome> {
        self.wait_for_gate();
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.inner.measure_batch_cancellable(traces, def, cancel)
    }
}

fn temp_cache(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// The headline dedup pin: N concurrent identical requests run exactly one
/// underlying search, and every client receives the identical trace and
/// latency.
#[test]
fn concurrent_duplicate_requests_tune_once_and_all_get_the_result() {
    const CLIENTS: usize = 4;
    let backend = GatedBackend::new();
    let path = temp_cache("atim_serve_dedup_test.jsonl");
    let session = Session::builder()
        .backend_arc(backend.clone())
        .schedule_cache(&path)
        .build();
    let handle = serve(session, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let client = Client::new(handle.addr());

    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let client = client.clone();
            std::thread::spawn(move || {
                client
                    .tune(&TuneRequest::quick("gemv", vec![2048, 2048]))
                    .unwrap()
            })
        })
        .collect();

    // All duplicates must be parked on the single in-flight job before the
    // search is allowed to proceed.
    let start = Instant::now();
    while handle.stats().dedup_joins < CLIENTS - 1 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "clients never joined the in-flight job: {:?}",
            handle.stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    backend.release();

    let replies: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let stats = handle.stats();
    assert_eq!(stats.tunes_run, 1, "exactly one search may run: {stats:?}");
    assert_eq!(stats.dedup_joins, CLIENTS - 1);
    assert_eq!(stats.cache_hits, 0);

    let first = &replies[0];
    assert!(first.measured > 0);
    for reply in &replies {
        assert!(!reply.cache_hit);
        assert_eq!(reply.trace, first.trace, "all clients get the same trace");
        assert_eq!(reply.latency_s, first.latency_s);
    }
    assert_eq!(
        replies.iter().filter(|r| r.deduped).count(),
        CLIENTS - 1,
        "every client but the initiator rode along"
    );

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Distinct shapes are distinct jobs: no false dedup across keys.
#[test]
fn distinct_shapes_tune_separately() {
    let session = Session::builder()
        .backend(AnalyticBackend::new(UpmemConfig::default()))
        .build();
    let handle = serve(session, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let client = Client::new(handle.addr());
    let a = client
        .tune(&TuneRequest::quick("mtv", vec![512, 512]))
        .unwrap();
    let b = client
        .tune(&TuneRequest::quick("mtv", vec![1024, 512]))
        .unwrap();
    assert!(!a.cache_hit && !b.cache_hit);
    assert_eq!(handle.stats().tunes_run, 2);
    handle.shutdown();
}

/// The cache-hit round trip — connect, frame, lookup, frame — answers well
/// inside a generous wall-clock bound, with zero measurements.
#[test]
fn cache_hit_round_trips_stay_fast() {
    let path = temp_cache("atim_serve_hit_latency_test.jsonl");
    let session = Session::builder()
        .backend(AnalyticBackend::new(UpmemConfig::default()))
        .schedule_cache(&path)
        .build();
    let handle = serve(session, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let client = Client::new(handle.addr());
    let request = TuneRequest::quick("ttv", vec![64, 64, 512]);

    let miss = client.tune(&request).unwrap();
    assert!(!miss.cache_hit);

    const HITS: usize = 10;
    let start = Instant::now();
    for _ in 0..HITS {
        let hit = client.tune(&request).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.measured, 0);
        assert_eq!(hit.trace, miss.trace);
    }
    let elapsed = start.elapsed();
    // Microseconds in practice; the bound only guards against the hit path
    // accidentally measuring or re-searching.
    assert!(
        elapsed < Duration::from_secs(5),
        "{HITS} cache hits took {elapsed:?}"
    );

    let stats = handle.stats();
    assert_eq!(stats.cache_hits, HITS);
    assert_eq!(stats.tunes_run, 1);
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A prebuilt cache file is the whole point of "ship the cache": a server
/// restarted on the same file answers its first request as a hit.
#[test]
fn restarted_server_hits_the_shipped_cache() {
    let path = temp_cache("atim_serve_restart_test.jsonl");
    let request = TuneRequest::quick("red", vec![1 << 20]);

    let build = || {
        Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build()
    };
    let first = serve(build(), "127.0.0.1:0", ServeOptions::default()).unwrap();
    let miss = Client::new(first.addr()).tune(&request).unwrap();
    assert!(!miss.cache_hit);
    first.shutdown();

    let second = serve(build(), "127.0.0.1:0", ServeOptions::default()).unwrap();
    let hit = Client::new(second.addr()).tune(&request).unwrap();
    assert!(hit.cache_hit, "restart must serve from the shipped cache");
    assert_eq!(hit.trace, miss.trace);
    assert_eq!(hit.latency_s, miss.latency_s);
    assert_eq!(second.stats().tunes_run, 0);
    second.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Watching duplicates stream progress from the one shared search.
#[test]
fn joined_watchers_see_the_shared_searchs_progress() {
    let backend = GatedBackend::new();
    let session = Session::builder().backend_arc(backend.clone()).build();
    let handle = serve(session, "127.0.0.1:0", ServeOptions::default()).unwrap();
    let client = Client::new(handle.addr());
    let mut request = TuneRequest::quick("va", vec![1 << 22]);
    request.watch = true;

    let watcher = {
        let client = client.clone();
        let request = request.clone();
        std::thread::spawn(move || {
            let mut seen = 0usize;
            let reply = client.tune_watch(&request, |_| seen += 1).unwrap();
            (seen, reply)
        })
    };
    let joiner = {
        let client = client.clone();
        let request = request.clone();
        std::thread::spawn(move || {
            let mut seen = 0usize;
            let reply = client.tune_watch(&request, |_| seen += 1).unwrap();
            (seen, reply)
        })
    };

    let start = Instant::now();
    while handle.stats().dedup_joins < 1 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "second watcher never joined"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    backend.release();

    let (seen_a, reply_a) = watcher.join().unwrap();
    let (seen_b, reply_b) = joiner.join().unwrap();
    assert_eq!(reply_a.trace, reply_b.trace);
    // Both subscribed before any measurement (the gate was closed), so both
    // saw every per-trial frame of the single shared search.
    assert_eq!(seen_a, reply_a.measured);
    assert_eq!(seen_b, reply_b.measured);
    assert_eq!(handle.stats().tunes_run, 1);
    handle.shutdown();
}
