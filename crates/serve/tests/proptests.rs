//! Property tests of the wire protocol: encode→decode is the identity for
//! every frame, and every way a frame can arrive damaged — truncated
//! header, truncated payload, hostile length, garbage bytes — maps to the
//! right `WireError`, never a bogus decoded value.

use atim_autotune::{Json, JsonCodec};
use atim_serve::{
    decode_frame, encode_frame, read_frame, Progress, Request, Response, StatsReply, TuneRequest,
    WireError,
};
use proptest::prelude::*;

/// An arbitrary-but-plausible JSON document built from raw case inputs:
/// nested objects/arrays with awkward strings (quotes, backslashes,
/// newlines, non-ASCII) and extreme numbers.
fn json_from(bits: u64, depth: usize) -> Json {
    let strings = [
        "",
        "plain",
        "with \"quotes\" and \\backslashes\\",
        "newline\nand\ttab",
        "π ≈ 3.14159 — ünïcödé",
        "]}{[",
    ];
    match bits % if depth == 0 { 5 } else { 7 } {
        0 => Json::Null,
        1 => Json::Bool(bits & 32 != 0),
        2 => Json::Int((bits as i64).wrapping_mul(0x9E37_79B9)),
        3 => Json::Float(((bits % 1_000_003) as f64 + 0.5) * 1e-7),
        4 => Json::Str(strings[(bits % strings.len() as u64) as usize].into()),
        5 => Json::Arr(
            (0..(bits % 4))
                .map(|i| json_from(bits.rotate_left(13 + i as u32), depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..(bits % 4))
                .map(|i| {
                    (
                        format!("k{i}"),
                        json_from(bits.rotate_right(11 + i as u32), depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_encode_decode_is_identity(bits in 0u64..u64::MAX, depth in 1usize..4) {
        let value = json_from(bits, depth);
        let bytes = encode_frame(&value);
        let (decoded, used) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(&decoded, &value);
        prop_assert_eq!(used, bytes.len());
        // The streaming reader agrees with the buffer decoder.
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), value);
    }

    #[test]
    fn truncated_frames_are_always_detected(bits in 0u64..u64::MAX, cut_bits in 0u64..u64::MAX) {
        let bytes = encode_frame(&json_from(bits, 3));
        let cut = (cut_bits % bytes.len() as u64) as usize;
        prop_assert!(matches!(decode_frame(&bytes[..cut]), Err(WireError::Truncated)));
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut at {}: {:?}", cut, other),
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence(a_bits in 0u64..u64::MAX, b_bits in 0u64..u64::MAX) {
        let (a, b) = (json_from(a_bits, 2), json_from(b_bits, 2));
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let (first, used) = decode_frame(&bytes).unwrap();
        let (second, rest) = decode_frame(&bytes[used..]).unwrap();
        prop_assert_eq!(first, a);
        prop_assert_eq!(second, b);
        prop_assert_eq!(used + rest, bytes.len());
    }

    #[test]
    fn tune_requests_round_trip_the_wire(
        shape_bits in 0u64..u64::MAX,
        rank in 1usize..4,
        trials in 1usize..100_000,
        population in 1usize..100_000,
        seed in 0u64..u64::MAX,
        watch_bit in 0u8..2,
    ) {
        let watch = watch_bit == 1;
        let request = Request::Tune(TuneRequest {
            workload: "mmtv".into(),
            shape: (0..rank).map(|i| 1 + (shape_bits >> (8 * i)) as i64 % 8192).collect(),
            trials,
            population,
            measure_per_round: 1 + trials.min(population) / 2,
            seed,
            watch,
        });
        let bytes = encode_frame(&request.to_json());
        let (json, _) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(Request::from_json(&json).unwrap(), request);
    }

    #[test]
    fn progress_and_stats_round_trip_the_wire(
        trial in 0usize..1_000_000,
        latency_bits in 0u64..u64::MAX,
        counts in 0u64..u64::MAX,
    ) {
        let latency = ((latency_bits % 900_719) as f64 + 1.0) * 1e-9;
        for response in [
            Response::Progress(Progress {
                trial,
                latency_s: latency * 2.0,
                best_latency_s: latency,
            }),
            Response::Stats(StatsReply {
                requests: (counts % 1000) as usize,
                cache_hits: (counts >> 10 & 1023) as usize,
                dedup_joins: (counts >> 20 & 1023) as usize,
                tunes_run: (counts >> 30 & 1023) as usize,
                cache_entries: (counts >> 40 & 1023) as usize,
                workers_alive: (counts >> 50 & 15) as usize,
                jobs_in_flight: (counts >> 54 & 15) as usize,
                jobs_requeued: (counts >> 58 & 15) as usize,
                reconnects: (counts >> 5 & 15) as usize,
                workers_retired: (counts >> 15 & 15) as usize,
                fingerprint_skews: (counts >> 25 & 15) as usize,
                version_skews: (counts >> 35 & 15) as usize,
                jobs_quarantined: (counts >> 45 & 15) as usize,
            }),
        ] {
            let bytes = encode_frame(&response.to_json());
            let (json, _) = decode_frame(&bytes).unwrap();
            prop_assert_eq!(Response::from_json(&json).unwrap(), response);
        }
    }
}
