//! Client deadlines: a server that accepts but never answers must surface
//! as the *typed* [`WireError::TimedOut`] within the configured deadline —
//! not block forever, and not masquerade as a generic I/O error.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use atim_serve::{Client, ClientError, TuneRequest, WireError};

/// A listener that accepts connections and then stays silent, keeping
/// every accepted socket alive so the client sees silence, not EOF.
fn silent_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || {
        let mut held = Vec::new();
        // Hold up to the few sockets this test opens; exit on error when
        // the test process tears the listener down.
        for stream in listener.incoming().take(4) {
            match stream {
                Ok(stream) => held.push(stream),
                Err(_) => break,
            }
        }
    });
    (addr, handle)
}

#[test]
fn a_silent_server_is_a_typed_timeout_not_a_hang() {
    let (addr, _server) = silent_server();
    let client = Client::new(addr).with_timeout(Duration::from_millis(80));

    let started = Instant::now();
    let err = client.stats().expect_err("silence must not produce stats");
    let elapsed = started.elapsed();

    assert!(
        matches!(err, ClientError::Wire(WireError::TimedOut)),
        "expected a typed timeout, got: {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "the deadline must bound the wait (waited {elapsed:?})"
    );
}

#[test]
fn tune_requests_honor_the_same_deadline() {
    let (addr, _server) = silent_server();
    let client = Client::new(addr).with_timeout(Duration::from_millis(80));
    let err = client
        .tune(&TuneRequest::quick("mtv", vec![64, 48]))
        .expect_err("silence must not produce a tune reply");
    assert!(
        matches!(err, ClientError::Wire(WireError::TimedOut)),
        "expected a typed timeout, got: {err:?}"
    );
}

#[test]
fn clients_without_a_deadline_still_construct_and_describe_themselves() {
    // The default remains deadline-free; with_timeout is strictly opt-in.
    let client = Client::parse("127.0.0.1:7421").expect("parse");
    assert_eq!(client.addr().port(), 7421);
}
