//! `Client::with_retry` integration: bounded reconnect attempts with the
//! fleet's deterministic backoff, a typed error when the budget runs
//! out, and — crucially — *no* retries for answers that prove the server
//! is alive (which would mask real errors or duplicate work).

use std::net::TcpListener;
use std::time::{Duration, Instant};

use atim_core::{AnalyticBackend, Session};
use atim_serve::{serve, Client, ClientError, ServeOptions, TuneRequest};
use atim_sim::UpmemConfig;

fn session() -> Session {
    Session::builder()
        .backend(AnalyticBackend::new(UpmemConfig::small()))
        .build()
}

/// Reserves a localhost port by binding and immediately releasing it.
fn free_port() -> std::net::SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr")
}

#[test]
fn exhausted_retries_surface_a_typed_error_with_the_attempt_count() {
    // Nothing listens on the reserved port: every attempt is refused.
    let client = Client::new(free_port()).with_retry(3, Duration::from_millis(5));
    match client.stats() {
        Err(ClientError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(
                matches!(*last, ClientError::Wire(_)),
                "the final error must be the underlying transport fault, got {last}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn retries_ride_out_a_server_that_starts_late() {
    let addr = free_port();
    let server = std::thread::spawn(move || {
        // The daemon comes up only after the client's first attempts have
        // already been refused.
        std::thread::sleep(Duration::from_millis(60));
        serve(session(), addr.to_string(), ServeOptions::default()).expect("serve")
    });

    let client = Client::new(addr).with_retry(20, Duration::from_millis(20));
    let start = Instant::now();
    let reply = client
        .tune(&TuneRequest::quick("mtv", vec![96, 64]))
        .expect("retries must bridge the startup gap");
    assert!(reply.latency_s > 0.0);
    assert!(
        start.elapsed() >= Duration::from_millis(50),
        "the first attempts must have been refused"
    );
    server.join().expect("server thread").shutdown();
}

#[test]
fn server_side_errors_are_not_retried() {
    let handle = serve(session(), "127.0.0.1:0", ServeOptions::default()).expect("serve");
    let client = Client::new(handle.addr()).with_retry(5, Duration::from_millis(5));

    // An unknown workload is answered with an error frame: the server is
    // alive, so retrying would just repeat the failure (and quintuple the
    // request count).
    match client.tune(&TuneRequest::quick("not-a-workload", vec![64])) {
        Err(ClientError::Server(message)) => {
            assert!(
                message.contains("not-a-workload"),
                "the server's reason must survive: {message}"
            );
        }
        other => panic!("expected the server error untouched, got {other:?}"),
    }
    assert_eq!(
        handle.stats().requests,
        1,
        "a server-side error must consume exactly one attempt"
    );
    handle.shutdown();
}
