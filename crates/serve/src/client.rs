//! The blocking client: one TCP connection per request.
//!
//! The client is deliberately stateless — it stores only the server
//! address, so one [`Client`] value can be shared (or cloned) across
//! threads, each request opening its own connection.  See
//! `examples/serve_client.rs` for the end-to-end flow.

use std::fmt;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use atim_autotune::JsonCodec;
use atim_core::fleet::backoff_delay;

use crate::proto::{Progress, Request, Response, StatsReply, TuneReply, TuneRequest};
use crate::wire::{read_frame, write_frame, WireError};

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, framing or decoding failed.
    Wire(WireError),
    /// The server answered with an error frame.
    Server(String),
    /// The server answered with a frame that makes no sense here (e.g. a
    /// stats reply to a tune request).
    Protocol(String),
    /// Every attempt of a [`Client::with_retry`] budget failed with a
    /// retryable transport error; `last` is the final one.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        // Routes expired deadlines to `WireError::TimedOut`.
        ClientError::Wire(WireError::from(e))
    }
}

/// Bounded retry budget for [`Client::with_retry`].
#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    attempts: u32,
    backoff: Duration,
    backoff_cap: Duration,
}

/// A client of one `atim-serve` instance.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
}

impl Client {
    /// A client for the server at `addr`, with no I/O deadline: calls
    /// block until the server answers (a tune request legitimately stays
    /// silent for the whole search unless `watch` streams progress).
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: None,
            retry: None,
        }
    }

    /// Parses `addr` (`host:port`) and builds a client.
    ///
    /// # Errors
    /// Fails on unparseable addresses.
    pub fn parse(addr: &str) -> Result<Self, std::net::AddrParseError> {
        Ok(Client::new(addr.parse()?))
    }

    /// Applies `timeout` to connecting and to every frame read and write.
    /// A server silent past the deadline surfaces as
    /// [`WireError::TimedOut`] instead of blocking forever.  Size it for
    /// the slowest expected gap between frames: for a non-watch tune that
    /// is the entire search, so prefer watch mode when using timeouts.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Retries each request up to `attempts` times when it fails with a
    /// *retryable* transport error (connection refused/reset, EOF, torn
    /// frame) — the signature of a daemon restarting mid-conversation.
    /// Between attempts the client sleeps the deterministic capped
    /// exponential [`backoff_delay`] schedule (base `backoff`, cap
    /// `8 × backoff`; the first attempt is immediate).  When the budget
    /// is exhausted, the typed [`ClientError::RetriesExhausted`] reports
    /// the attempt count and the final error.
    ///
    /// Server-side errors, protocol violations and timeouts are *not*
    /// retried: they mean the server is reachable and answering.
    /// `shutdown` never retries (a dead server is already shut down).
    pub fn with_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.retry = Some(RetryPolicy {
            attempts: attempts.max(1),
            backoff,
            backoff_cap: backoff.saturating_mul(8),
        });
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn request(&self, request: &Request) -> Result<TcpStream, ClientError> {
        let mut stream = match self.timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout)?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        write_frame(&mut stream, &request.to_json())?;
        Ok(stream)
    }

    fn read_response(stream: &mut TcpStream) -> Result<Response, ClientError> {
        let json = read_frame(stream)?;
        Response::from_json(&json).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Whether an error is worth another connection attempt: transport
    /// faults that a restarting daemon produces.  Timeouts are excluded
    /// (the deadline already expresses the caller's patience), as are
    /// server errors and protocol violations (the server is up and
    /// answering).
    fn retryable(e: &ClientError) -> bool {
        matches!(
            e,
            ClientError::Wire(WireError::Closed)
                | ClientError::Wire(WireError::Truncated)
                | ClientError::Wire(WireError::Io(_))
        )
    }

    /// Runs `call` under the configured retry budget (or once, without
    /// one).
    fn with_retries<T>(
        &self,
        mut call: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let Some(policy) = self.retry else {
            return call();
        };
        let mut last = None;
        for attempt in 0..policy.attempts {
            let delay = backoff_delay(attempt, policy.backoff, policy.backoff_cap);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match call() {
                Ok(value) => return Ok(value),
                Err(e) if Self::retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: policy.attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Tunes (or cache-resolves) a workload, discarding progress frames.
    ///
    /// # Errors
    /// Surfaces transport failures and server-side errors.
    pub fn tune(&self, request: &TuneRequest) -> Result<TuneReply, ClientError> {
        self.tune_watch(request, |_| {})
    }

    /// Like [`Client::tune`], invoking `on_progress` for every streamed
    /// per-trial frame (ask for them with [`TuneRequest::watch`]).
    ///
    /// # Errors
    /// Surfaces transport failures and server-side errors.
    pub fn tune_watch(
        &self,
        request: &TuneRequest,
        mut on_progress: impl FnMut(&Progress),
    ) -> Result<TuneReply, ClientError> {
        self.with_retries(|| {
            let mut stream = self.request(&Request::Tune(request.clone()))?;
            loop {
                match Self::read_response(&mut stream)? {
                    Response::Progress(p) => on_progress(&p),
                    Response::Result(reply) => return Ok(reply),
                    Response::Error(message) => return Err(ClientError::Server(message)),
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "unexpected frame {other:?} to a tune request"
                        )))
                    }
                }
            }
        })
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    /// Surfaces transport failures and server-side errors.
    pub fn stats(&self) -> Result<StatsReply, ClientError> {
        self.with_retries(|| {
            let mut stream = self.request(&Request::Stats)?;
            match Self::read_response(&mut stream)? {
                Response::Stats(stats) => Ok(stats),
                Response::Error(message) => Err(ClientError::Server(message)),
                other => Err(ClientError::Protocol(format!(
                    "unexpected frame {other:?} to a stats request"
                ))),
            }
        })
    }

    /// Asks the server to stop (cancelling in-flight searches).
    ///
    /// # Errors
    /// Surfaces transport failures and server-side errors.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let mut stream = self.request(&Request::Shutdown)?;
        match Self::read_response(&mut stream)? {
            Response::Ok => Ok(()),
            Response::Error(message) => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected frame {other:?} to a shutdown request"
            ))),
        }
    }
}
