//! The request/response protocol spoken over [`crate::wire`] frames.
//!
//! One connection carries exactly one [`Request`] frame from the client,
//! answered by zero or more [`Response::Progress`] frames (when the client
//! asked to watch) followed by exactly one terminal frame
//! ([`Response::Result`], [`Response::Stats`], [`Response::Ok`] or
//! [`Response::Error`]).  Everything is a tagged JSON object (`"type"`
//! discriminator), encoded through the same [`JsonCodec`] layer as tune
//! logs and the schedule cache; `u64` seeds travel as decimal strings for
//! the same exceeds-a-double reason.

use atim_autotune::{Json, JsonCodec, JsonError, Trace, TuningOptions};

fn field_u64(json: &Json, key: &str) -> Result<u64, JsonError> {
    json.get(key)?.as_str()?.parse().map_err(|_| JsonError {
        message: format!("{key} must be a decimal u64 string"),
        offset: None,
    })
}

fn shape_of(json: &Json) -> Result<Vec<i64>, JsonError> {
    json.get("shape")?
        .as_arr()?
        .iter()
        .map(Json::as_i64)
        .collect()
}

fn shape_json(shape: &[i64]) -> Json {
    Json::Arr(shape.iter().map(|&e| Json::Int(e)).collect())
}

/// A request to tune (or cache-resolve) one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRequest {
    /// Workload kind by canonical name (`"va"`, `"mtv"`, `"gemv"`, …).
    pub workload: String,
    /// Exact tensor shape (`[n]`, `[m, k]` or `[m, n, k]`).
    pub shape: Vec<i64>,
    /// Total trial budget for a cache miss.
    pub trials: usize,
    /// Candidates generated per search round.
    pub population: usize,
    /// Candidates measured per round.
    pub measure_per_round: usize,
    /// RNG seed (part of the dedup identity: different seeds are
    /// different searches).
    pub seed: u64,
    /// Stream per-trial [`Progress`] frames while the search runs.
    pub watch: bool,
}

impl TuneRequest {
    /// A request with the default tuning options for a workload.
    pub fn new(workload: impl Into<String>, shape: Vec<i64>) -> Self {
        let defaults = TuningOptions::default();
        TuneRequest {
            workload: workload.into(),
            shape,
            trials: defaults.trials,
            population: defaults.population,
            measure_per_round: defaults.measure_per_round,
            seed: defaults.seed,
            watch: false,
        }
    }

    /// The same request with the small test/demo budget of
    /// [`TuningOptions::quick`].
    pub fn quick(workload: impl Into<String>, shape: Vec<i64>) -> Self {
        let quick = TuningOptions::quick();
        TuneRequest {
            trials: quick.trials,
            population: quick.population,
            measure_per_round: quick.measure_per_round,
            ..TuneRequest::new(workload, shape)
        }
    }

    /// The tuning options this request asks for (default search strategy;
    /// the strategy is not part of the wire protocol).
    pub fn options(&self) -> TuningOptions {
        TuningOptions {
            trials: self.trials,
            population: self.population,
            measure_per_round: self.measure_per_round,
            seed: self.seed,
            ..TuningOptions::default()
        }
    }
}

impl JsonCodec for TuneRequest {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("tune".into())),
            ("workload".into(), Json::Str(self.workload.clone())),
            ("shape".into(), shape_json(&self.shape)),
            ("trials".into(), Json::Int(self.trials as i64)),
            ("population".into(), Json::Int(self.population as i64)),
            (
                "measure_per_round".into(),
                Json::Int(self.measure_per_round as i64),
            ),
            ("seed".into(), Json::Str(self.seed.to_string())),
            ("watch".into(), Json::Bool(self.watch)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TuneRequest {
            workload: json.get("workload")?.as_str()?.to_string(),
            shape: shape_of(json)?,
            trials: json.get("trials")?.as_usize()?,
            population: json.get("population")?.as_usize()?,
            measure_per_round: json.get("measure_per_round")?.as_usize()?,
            seed: field_u64(json, "seed")?,
            watch: json.get("watch")?.as_bool()?,
        })
    }
}

/// A client-to-server request (one per connection).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Tune or cache-resolve a workload.
    Tune(TuneRequest),
    /// Report server counters.
    Stats,
    /// Stop the server: cancel in-flight searches, refuse new work.
    Shutdown,
}

impl JsonCodec for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Tune(req) => req.to_json(),
            Request::Stats => Json::Obj(vec![("type".into(), Json::Str("stats".into()))]),
            Request::Shutdown => Json::Obj(vec![("type".into(), Json::Str("shutdown".into()))]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.get("type")?.as_str()? {
            "tune" => Ok(Request::Tune(TuneRequest::from_json(json)?)),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError {
                message: format!("unknown request type {other:?}"),
                offset: None,
            }),
        }
    }
}

/// One per-trial progress update streamed to watching clients.
#[derive(Debug, Clone, PartialEq)]
pub struct Progress {
    /// Trial index within the search.
    pub trial: usize,
    /// Latency of this trial's candidate, in seconds.
    pub latency_s: f64,
    /// Best latency seen up to and including this trial.
    pub best_latency_s: f64,
}

impl JsonCodec for Progress {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("progress".into())),
            ("trial".into(), Json::Int(self.trial as i64)),
            (
                "latency_s".into(),
                atim_autotune::json::encode_f64(self.latency_s),
            ),
            (
                "best_latency_s".into(),
                atim_autotune::json::encode_f64(self.best_latency_s),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Progress {
            trial: json.get("trial")?.as_usize()?,
            latency_s: json.get("latency_s")?.as_f64()?,
            best_latency_s: json.get("best_latency_s")?.as_f64()?,
        })
    }
}

/// The terminal answer to a [`TuneRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReply {
    /// `true` when the schedule cache answered without any measurement.
    pub cache_hit: bool,
    /// `true` when this client joined a search another client started.
    pub deduped: bool,
    /// Best latency in seconds.
    pub latency_s: f64,
    /// Candidate measurements this request caused (0 on a cache hit or a
    /// deduped join).
    pub measured: usize,
    /// The winning trace (decisions-only; materialize through the same
    /// space generator to compile it).
    pub trace: Trace,
}

impl JsonCodec for TuneReply {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("result".into())),
            ("cache_hit".into(), Json::Bool(self.cache_hit)),
            ("deduped".into(), Json::Bool(self.deduped)),
            (
                "latency_s".into(),
                atim_autotune::json::encode_f64(self.latency_s),
            ),
            ("measured".into(), Json::Int(self.measured as i64)),
            ("trace".into(), self.trace.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TuneReply {
            cache_hit: json.get("cache_hit")?.as_bool()?,
            deduped: json.get("deduped")?.as_bool()?,
            latency_s: json.get("latency_s")?.as_f64()?,
            measured: json.get("measured")?.as_usize()?,
            trace: Trace::from_json(json.get("trace")?)?,
        })
    }
}

/// Server counters, answered to a [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Requests accepted (all types).
    pub requests: usize,
    /// Tune requests answered straight from the schedule cache.
    pub cache_hits: usize,
    /// Tune requests that joined an identical in-flight search.
    pub dedup_joins: usize,
    /// Searches actually executed.
    pub tunes_run: usize,
    /// Entries currently in the schedule cache.
    pub cache_entries: usize,
    /// Measurement-fleet workers currently alive (0 without a fleet).
    pub workers_alive: usize,
    /// Fleet jobs dispatched to a worker and not yet answered.
    pub jobs_in_flight: usize,
    /// Fleet jobs re-queued after their worker died (cumulative).
    pub jobs_requeued: usize,
    /// Workers that died and successfully re-handshook (cumulative).
    pub reconnects: usize,
    /// Workers retired after exhausting their reconnect budget.
    pub workers_retired: usize,
    /// Handshakes refused for a backend-fingerprint mismatch.
    pub fingerprint_skews: usize,
    /// Handshakes refused for a protocol- or build-version mismatch.
    pub version_skews: usize,
    /// Jobs quarantined after killing too many distinct workers.
    pub jobs_quarantined: usize,
}

impl JsonCodec for StatsReply {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("stats".into())),
            ("requests".into(), Json::Int(self.requests as i64)),
            ("cache_hits".into(), Json::Int(self.cache_hits as i64)),
            ("dedup_joins".into(), Json::Int(self.dedup_joins as i64)),
            ("tunes_run".into(), Json::Int(self.tunes_run as i64)),
            ("cache_entries".into(), Json::Int(self.cache_entries as i64)),
            ("workers_alive".into(), Json::Int(self.workers_alive as i64)),
            (
                "jobs_in_flight".into(),
                Json::Int(self.jobs_in_flight as i64),
            ),
            ("jobs_requeued".into(), Json::Int(self.jobs_requeued as i64)),
            ("reconnects".into(), Json::Int(self.reconnects as i64)),
            (
                "workers_retired".into(),
                Json::Int(self.workers_retired as i64),
            ),
            (
                "fingerprint_skews".into(),
                Json::Int(self.fingerprint_skews as i64),
            ),
            ("version_skews".into(), Json::Int(self.version_skews as i64)),
            (
                "jobs_quarantined".into(),
                Json::Int(self.jobs_quarantined as i64),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        // The fleet counters postdate the v1 stats frame; tolerate their
        // absence so new clients can read old servers.
        let fleet = |field: &str| json.get(field).and_then(|v| v.as_usize()).unwrap_or(0);
        Ok(StatsReply {
            requests: json.get("requests")?.as_usize()?,
            cache_hits: json.get("cache_hits")?.as_usize()?,
            dedup_joins: json.get("dedup_joins")?.as_usize()?,
            tunes_run: json.get("tunes_run")?.as_usize()?,
            cache_entries: json.get("cache_entries")?.as_usize()?,
            workers_alive: fleet("workers_alive"),
            jobs_in_flight: fleet("jobs_in_flight"),
            jobs_requeued: fleet("jobs_requeued"),
            reconnects: fleet("reconnects"),
            workers_retired: fleet("workers_retired"),
            fingerprint_skews: fleet("fingerprint_skews"),
            version_skews: fleet("version_skews"),
            jobs_quarantined: fleet("jobs_quarantined"),
        })
    }
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A streamed per-trial update (never terminal).
    Progress(Progress),
    /// The terminal answer to a tune request.
    Result(TuneReply),
    /// The terminal answer to a stats request.
    Stats(StatsReply),
    /// Acknowledgement (terminal answer to shutdown).
    Ok,
    /// The request failed; the connection closes after this frame.
    Error(String),
}

impl JsonCodec for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Progress(p) => p.to_json(),
            Response::Result(r) => r.to_json(),
            Response::Stats(s) => s.to_json(),
            Response::Ok => Json::Obj(vec![("type".into(), Json::Str("ok".into()))]),
            Response::Error(message) => Json::Obj(vec![
                ("type".into(), Json::Str("error".into())),
                ("message".into(), Json::Str(message.clone())),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.get("type")?.as_str()? {
            "progress" => Ok(Response::Progress(Progress::from_json(json)?)),
            "result" => Ok(Response::Result(TuneReply::from_json(json)?)),
            "stats" => Ok(Response::Stats(StatsReply::from_json(json)?)),
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error(json.get("message")?.as_str()?.to_string())),
            other => Err(JsonError {
                message: format!("unknown response type {other:?}"),
                offset: None,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_autotune::trace::Decision;

    #[test]
    fn requests_round_trip() {
        let mut req = TuneRequest::quick("mtv", vec![4096, 4096]);
        req.seed = u64::MAX; // exceeds an f64's exact integer range
        req.watch = true;
        for original in [Request::Tune(req), Request::Stats, Request::Shutdown] {
            let decoded = Request::from_json(&original.to_json()).unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn responses_round_trip() {
        let trace = Trace::from_decisions("upmem", vec![("tasklets", Decision::Int(16))]);
        for original in [
            Response::Progress(Progress {
                trial: 7,
                latency_s: 1.5e-3,
                best_latency_s: 9.0e-4,
            }),
            Response::Result(TuneReply {
                cache_hit: true,
                deduped: false,
                latency_s: 9.0e-4,
                measured: 0,
                trace,
            }),
            Response::Stats(StatsReply {
                requests: 4,
                cache_hits: 2,
                dedup_joins: 1,
                tunes_run: 1,
                cache_entries: 3,
                workers_alive: 2,
                jobs_in_flight: 5,
                jobs_requeued: 1,
                reconnects: 2,
                workers_retired: 1,
                fingerprint_skews: 1,
                version_skews: 1,
                jobs_quarantined: 1,
            }),
            Response::Ok,
            Response::Error("no such workload".into()),
        ] {
            let decoded = Response::from_json(&original.to_json()).unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn v1_stats_frames_without_fleet_counters_still_decode() {
        // A pre-fleet server's stats frame: the new counters default to 0
        // instead of failing the decode.
        let v1 = Json::Obj(vec![
            ("type".into(), Json::Str("stats".into())),
            ("requests".into(), Json::Int(9)),
            ("cache_hits".into(), Json::Int(4)),
            ("dedup_joins".into(), Json::Int(2)),
            ("tunes_run".into(), Json::Int(3)),
            ("cache_entries".into(), Json::Int(5)),
        ]);
        let decoded = StatsReply::from_json(&v1).unwrap();
        assert_eq!(decoded.requests, 9);
        assert_eq!(decoded.workers_alive, 0);
        assert_eq!(decoded.jobs_in_flight, 0);
        assert_eq!(decoded.jobs_requeued, 0);
        assert_eq!(decoded.reconnects, 0);
        assert_eq!(decoded.workers_retired, 0);
        assert_eq!(decoded.fingerprint_skews, 0);
        assert_eq!(decoded.version_skews, 0);
        assert_eq!(decoded.jobs_quarantined, 0);
    }

    #[test]
    fn unknown_types_are_rejected() {
        let j = Json::Obj(vec![("type".into(), Json::Str("pwn".into()))]);
        assert!(Request::from_json(&j).is_err());
        assert!(Response::from_json(&j).is_err());
    }
}
