//! The `atim-serve` binary: a localhost tuning server over a persistent
//! schedule cache.
//!
//! ```text
//! atim-serve [--addr HOST:PORT] [--cache PATH] [--hw paper|small]
//!            [--analytic] [--tuner-threads N] [--fleet N]
//! ```
//!
//! Prints `listening on <addr>` once bound, then serves until a client
//! sends a `shutdown` request.  Without `--cache`, the
//! `ATIM_SCHEDULE_CACHE` environment variable still attaches one; with
//! neither, the server serves from memory only (every restart re-tunes).

use std::process::ExitCode;

use atim_core::fleet::{workers_from_env, BackendSpec, FleetBackend, FleetOptions};
use atim_core::{AnalyticBackend, Session, SessionBuilder};
use atim_serve::{serve_forever, ServeOptions};
use atim_sim::UpmemConfig;

struct Args {
    addr: String,
    cache: Option<String>,
    hw: UpmemConfig,
    analytic: bool,
    tuner_threads: usize,
    fleet: Option<usize>,
}

fn usage() -> &'static str {
    "usage: atim-serve [--addr HOST:PORT] [--cache PATH] [--hw paper|small] \
     [--analytic] [--tuner-threads N] [--fleet N]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7421".into(),
        cache: None,
        hw: UpmemConfig::default(),
        analytic: false,
        tuner_threads: 1,
        fleet: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--cache" => args.cache = Some(value("--cache")?),
            "--hw" => {
                args.hw = match value("--hw")?.as_str() {
                    "paper" => UpmemConfig::default(),
                    "small" => UpmemConfig::small(),
                    other => return Err(format!("unknown --hw {other:?} (paper|small)")),
                }
            }
            "--analytic" => args.analytic = true,
            "--fleet" => {
                args.fleet = Some(
                    value("--fleet")?
                        .parse()
                        .map_err(|_| "--fleet needs a worker count (0 = in-process)".to_string())?,
                )
            }
            "--tuner-threads" => {
                args.tuner_threads = value("--tuner-threads")?
                    .parse()
                    .map_err(|_| "--tuner-threads needs a positive integer".to_string())?;
                if args.tuner_threads == 0 {
                    return Err("--tuner-threads needs a positive integer".into());
                }
            }
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn build_session(args: &Args) -> Result<Session, String> {
    let mut builder = SessionBuilder::default();
    // --fleet N takes precedence over ATIM_FLEET_WORKERS; both measure
    // each tuning round across N local atim-worker processes.
    let workers = args.fleet.or_else(workers_from_env).unwrap_or(0);
    if workers > 0 {
        let spec = if args.analytic {
            BackendSpec::analytic(args.hw.clone())
        } else {
            BackendSpec::sim(args.hw.clone())
        };
        let fleet = FleetBackend::spawn(spec, workers, FleetOptions::from_env())
            .map_err(|e| format!("cannot launch a {workers}-worker fleet: {e}"))?;
        eprintln!(
            "atim-serve: measuring on a fleet of {} worker process(es)",
            fleet.workers_alive()
        );
        builder = builder.backend(fleet);
    } else if args.analytic {
        builder = builder.backend(AnalyticBackend::new(args.hw.clone()));
    } else {
        builder = builder.hardware(args.hw.clone());
    }
    if let Some(path) = &args.cache {
        builder = builder.schedule_cache(path);
    }
    Ok(builder.build())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let session = match build_session(&args) {
        Ok(session) => session,
        Err(message) => {
            eprintln!("atim-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    if session.schedule_cache().is_none() {
        eprintln!(
            "atim-serve: no schedule cache attached (--cache or ATIM_SCHEDULE_CACHE); \
             tuned schedules will not survive a restart"
        );
    }
    let options = ServeOptions {
        tuner_threads: args.tuner_threads,
        ..ServeOptions::default()
    };
    match serve_forever(session, args.addr.as_str(), options, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("atim-serve: cannot bind {}: {e}", args.addr);
            ExitCode::FAILURE
        }
    }
}
