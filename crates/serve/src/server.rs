//! The tuning server: answer cache hits in microseconds, queue misses
//! onto a shared work queue, dedup identical in-flight searches.
//!
//! # Threading model
//!
//! * One **accept** thread owns the listener and spawns a short-lived
//!   thread per connection.
//! * `tuner_threads` **worker** threads drain a shared job queue; each job
//!   is one `(workload, shape, machine, generator, options)` search.
//! * Connection threads never search.  A tune request resolves, in order:
//!   schedule-cache hit (answered immediately, zero measurements) →
//!   in-flight duplicate (subscribe to the running job — exactly one
//!   search runs no matter how many clients ask) → fresh job (enqueued).
//!
//! The miss path is atomic: the cache lookup and the in-flight-map probe
//! happen under one lock, and workers record a finished search into the
//! cache *before* removing it from the in-flight map — so between "two
//! clients ask concurrently" and "the result is durable", every request
//! lands on exactly one of {hit, join, enqueue}.
//!
//! Shutdown composes with the tuning stack's cooperative cancellation: the
//! server's [`CancelToken`] is threaded into every search's [`Budget`], so
//! stopping the server also stops an in-flight search at its next
//! measurement batch.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use atim_autotune::session::{Budget, TuningObserver};
use atim_autotune::{CacheKey, CancelToken, JsonCodec, TuningRecord};
use atim_core::Session;
use atim_tir::compute::ComputeDef;
use atim_workloads::{Workload, WorkloadKind};

use crate::proto::{Progress, Request, Response, StatsReply, TuneReply, TuneRequest};
use crate::wire::{read_frame, write_frame};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads draining the tune queue (default 1: searches are
    /// themselves parallel inside the backend, and a single queue keeps
    /// measurements honest on one machine).
    pub tuner_threads: usize,
    /// Per-search budget applied on top of each request's own trial
    /// target.  Its cancel token, if any, is replaced by the server's.
    pub budget: Budget,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            tuner_threads: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// A snapshot of the server's counters.
pub type ServerStats = StatsReply;

#[derive(Default)]
struct Counters {
    requests: AtomicUsize,
    cache_hits: AtomicUsize,
    dedup_joins: AtomicUsize,
    tunes_run: AtomicUsize,
}

/// The dedup identity of a search: the cache coordinates plus the options
/// that shape the trajectory.  Two requests with the same `JobKey` are the
/// same search and share one execution.
#[derive(Clone, PartialEq, Eq, Hash)]
struct JobKey {
    cache: CacheKey,
    trials: usize,
    population: usize,
    measure_per_round: usize,
    seed: u64,
}

struct JobState {
    /// Set exactly once, when the search finishes (or fails).
    done: Option<Response>,
    /// Waiting clients; `watch` selects whether progress frames flow.
    subscribers: Vec<(mpsc::Sender<Response>, bool)>,
}

struct Job {
    key: JobKey,
    def: ComputeDef,
    request: TuneRequest,
    state: Mutex<JobState>,
}

impl Job {
    /// Subscribes a client; a job that already finished answers
    /// immediately through the same channel.
    fn subscribe(&self, watch: bool) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        let mut state = self.state.lock().expect("job state poisoned");
        match &state.done {
            Some(terminal) => {
                let _ = tx.send(terminal.clone());
            }
            None => state.subscribers.push((tx, watch)),
        }
        rx
    }

    fn publish_progress(&self, progress: Progress) {
        let state = self.state.lock().expect("job state poisoned");
        for (tx, watch) in &state.subscribers {
            if *watch {
                let _ = tx.send(Response::Progress(progress.clone()));
            }
        }
    }

    fn fulfill(&self, terminal: Response) {
        let mut state = self.state.lock().expect("job state poisoned");
        for (tx, _) in state.subscribers.drain(..) {
            let _ = tx.send(terminal.clone());
        }
        state.done = Some(terminal);
    }
}

struct ServerState {
    session: Session,
    options: ServeOptions,
    cancel: CancelToken,
    addr: SocketAddr,
    inflight: Mutex<HashMap<JobKey, Arc<Job>>>,
    queue: Mutex<Option<mpsc::Sender<Arc<Job>>>>,
    counters: Counters,
}

impl ServerState {
    fn stats(&self) -> ServerStats {
        // A fleet-backed session reports its worker pool; any other
        // backend leaves the fleet counters at zero.
        let fleet = self.session.backend().fleet_stats().unwrap_or_default();
        StatsReply {
            requests: self.counters.requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            dedup_joins: self.counters.dedup_joins.load(Ordering::Relaxed),
            tunes_run: self.counters.tunes_run.load(Ordering::Relaxed),
            cache_entries: self
                .session
                .schedule_cache()
                .map(|c| c.lock().expect("schedule cache poisoned").len())
                .unwrap_or(0),
            workers_alive: fleet.workers_alive,
            jobs_in_flight: fleet.jobs_in_flight,
            jobs_requeued: fleet.jobs_requeued,
            reconnects: fleet.reconnects,
            workers_retired: fleet.workers_retired,
            fingerprint_skews: fleet.fingerprint_skews,
            version_skews: fleet.version_skews,
            jobs_quarantined: fleet.jobs_quarantined,
        }
    }
}

/// A running server: its bound address, live counters, and the handle that
/// stops it.  Dropping the handle shuts the server down.
pub struct ServerHandle {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// The token that cancels in-flight searches on shutdown (clone it to
    /// compose server shutdown with external cancellation).
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancel.clone()
    }

    /// Blocks until the server stops (a client sent `shutdown`, or another
    /// thread fired [`ServerHandle::cancel_token`]), then joins every
    /// server thread.
    pub fn join(mut self) {
        self.stop_and_join();
    }

    /// Stops the server and joins every server thread: fires the cancel
    /// token (in-flight searches stop at their next batch), closes the
    /// work queue, and unblocks the accept loop.
    pub fn shutdown(mut self) {
        self.state.cancel.cancel();
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(accept) = self.accept.take() {
            // `join` waits for a client-driven shutdown; `shutdown` fired
            // the token first.  Either way the accept loop needs one last
            // connection to observe it.
            if self.state.cancel.is_cancelled() {
                let _ = TcpStream::connect(self.state.addr);
            }
            let _ = accept.join();
        }
        // Closing the queue sender stops the workers once drained.
        drop(self.state.queue.lock().expect("queue poisoned").take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.cancel.cancel();
        self.stop_and_join();
    }
}

/// Starts the tuning server on `addr` (use port 0 for an ephemeral port;
/// [`ServerHandle::addr`] reports the bound one).
///
/// The session's attached schedule cache — if any — is both the hit path
/// and the durable store for finished searches; a session without one
/// still serves, but re-tunes per `JobKey` across restarts.
///
/// # Errors
/// Propagates the bind failure.
pub fn serve(
    session: Session,
    addr: impl ToSocketAddrs,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let tuner_threads = options.tuner_threads.max(1);
    let (tx, rx) = mpsc::channel::<Arc<Job>>();
    let state = Arc::new(ServerState {
        session,
        options,
        cancel: CancelToken::new(),
        addr,
        inflight: Mutex::new(HashMap::new()),
        queue: Mutex::new(Some(tx)),
        counters: Counters::default(),
    });

    let shared_rx = Arc::new(Mutex::new(rx));
    let workers = (0..tuner_threads)
        .map(|i| {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&shared_rx);
            std::thread::Builder::new()
                .name(format!("atim-serve-tuner-{i}"))
                .spawn(move || worker_loop(&state, &rx))
                .expect("spawn tuner thread")
        })
        .collect();

    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("atim-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_state))
        .expect("spawn accept thread");

    Ok(ServerHandle {
        state,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.cancel.is_cancelled() {
                    return;
                }
                continue;
            }
        };
        if state.cancel.is_cancelled() {
            return;
        }
        let state = Arc::clone(state);
        // Connection threads are detached: they only outlive the server by
        // the time it takes to write a final (cancelled) frame.
        let _ = std::thread::Builder::new()
            .name("atim-serve-conn".into())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let request = match read_frame(&mut stream) {
        Ok(json) => match Request::from_json(&json) {
            Ok(request) => request,
            Err(e) => {
                let _ = write_frame(&mut stream, &Response::Error(e.to_string()).to_json());
                return;
            }
        },
        // A peer probing the port (including our own shutdown self-connect)
        // is not a request.
        Err(_) => return,
    };
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    match request {
        Request::Stats => {
            let _ = write_frame(&mut stream, &Response::Stats(state.stats()).to_json());
        }
        Request::Shutdown => {
            state.cancel.cancel();
            let _ = write_frame(&mut stream, &Response::Ok.to_json());
            // Unblock our own accept loop so `join` returns.
            let _ = TcpStream::connect(state.addr);
        }
        Request::Tune(request) => handle_tune(&mut stream, state, request),
    }
}

/// Resolves a tune request to its workload definition, or the error frame
/// to answer with.
fn resolve_def(request: &TuneRequest) -> Result<ComputeDef, Response> {
    let kind = WorkloadKind::parse(&request.workload).ok_or_else(|| {
        Response::Error(format!(
            "unknown workload {:?}; expected one of {}",
            request.workload,
            WorkloadKind::ALL.map(|k| k.name()).join("/")
        ))
    })?;
    Workload::new(kind, request.shape.clone())
        .try_compute_def()
        .ok_or_else(|| {
            Response::Error(format!(
                "bad shape {:?} for {}: expected {} positive extent(s)",
                request.shape,
                kind.name(),
                kind.rank()
            ))
        })
}

fn handle_tune(stream: &mut TcpStream, state: &Arc<ServerState>, request: TuneRequest) {
    let def = match resolve_def(&request) {
        Ok(def) => def,
        Err(error) => {
            let _ = write_frame(stream, &error.to_json());
            return;
        }
    };
    if let Err(e) = atim_autotune::validate_options(&request.options()) {
        let _ = write_frame(stream, &Response::Error(e.to_string()).to_json());
        return;
    }
    let key = JobKey {
        cache: state.session.cache_key(&def),
        trials: request.trials,
        population: request.population,
        measure_per_round: request.measure_per_round,
        seed: request.seed,
    };

    // Hit / join / enqueue — decided atomically under the in-flight lock.
    let watch = request.watch;
    let mut joined = false;
    let rx = {
        let mut inflight = state.inflight.lock().expect("inflight map poisoned");
        if let Some(hit) = state.session.cached(&def) {
            state.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let reply = TuneReply {
                cache_hit: true,
                deduped: false,
                latency_s: hit.best_latency_s(),
                measured: 0,
                trace: hit.best_trace().clone(),
            };
            drop(inflight);
            let _ = write_frame(stream, &Response::Result(reply).to_json());
            return;
        }
        if let Some(job) = inflight.get(&key) {
            state.counters.dedup_joins.fetch_add(1, Ordering::Relaxed);
            joined = true;
            job.subscribe(watch)
        } else {
            let job = Arc::new(Job {
                key: key.clone(),
                def,
                request,
                state: Mutex::new(JobState {
                    done: None,
                    subscribers: Vec::new(),
                }),
            });
            let rx = job.subscribe(watch);
            inflight.insert(key, Arc::clone(&job));
            let queue = state.queue.lock().expect("queue poisoned");
            match queue.as_ref() {
                Some(tx) if tx.send(Arc::clone(&job)).is_ok() => {}
                _ => {
                    // Shutting down: fail the job we just registered.
                    drop(queue);
                    inflight.remove(&job.key);
                    job.fulfill(Response::Error("server is shutting down".into()));
                }
            }
            rx
        }
    };

    // Forward frames until the terminal one.  A send failure on our side
    // (client hung up) just ends the thread; the search keeps running for
    // the other subscribers and the cache.
    for mut response in rx {
        let terminal = !matches!(response, Response::Progress(_));
        if let Response::Result(reply) = &mut response {
            // Whether *this* client rode on another client's search is a
            // per-subscriber fact, stamped here rather than by the worker.
            reply.deduped = joined;
        }
        if write_frame(stream, &response.to_json()).is_err() {
            return;
        }
        if terminal {
            return;
        }
    }
}

/// Streams per-trial progress to a job's watching subscribers.
struct BroadcastObserver<'a> {
    job: &'a Job,
}

impl TuningObserver for BroadcastObserver<'_> {
    fn on_trial(&mut self, record: &TuningRecord) {
        self.job.publish_progress(Progress {
            trial: record.trial,
            latency_s: record.latency_s,
            best_latency_s: record.best_so_far_s,
        });
    }
}

fn worker_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<mpsc::Receiver<Arc<Job>>>>) {
    loop {
        // Hold the receiver lock only while dequeueing, not while tuning.
        let job = {
            let rx = rx.lock().expect("queue receiver poisoned");
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        if state.cancel.is_cancelled() {
            state
                .inflight
                .lock()
                .expect("inflight map poisoned")
                .remove(&job.key);
            job.fulfill(Response::Error("server is shutting down".into()));
            continue;
        }
        run_job(state, &job);
    }
}

fn run_job(state: &Arc<ServerState>, job: &Job) {
    state.counters.tunes_run.fetch_add(1, Ordering::Relaxed);
    let budget = Budget {
        cancel: Some(state.cancel.clone()),
        ..state.options.budget.clone()
    };
    let mut observer = BroadcastObserver { job };
    // `tune_observed` records the win into the session's schedule cache
    // before we drop the job from the in-flight map, so later requests
    // always find it in exactly one of the two.
    let tuned =
        state
            .session
            .tune_observed(&job.def, &job.request.options(), &budget, &mut observer);
    let terminal = match tuned {
        Ok(tuned) if tuned.result().best.is_some() => Response::Result(TuneReply {
            cache_hit: false,
            deduped: false, // each connection stamps its own join status
            latency_s: tuned.best_latency_s(),
            measured: tuned.measured(),
            trace: tuned.best_trace().clone(),
        }),
        Ok(_) => Response::Error(if state.cancel.is_cancelled() {
            "search cancelled by server shutdown".into()
        } else {
            "search finished without a valid candidate".into()
        }),
        Err(e) => Response::Error(e.to_string()),
    };
    state
        .inflight
        .lock()
        .expect("inflight map poisoned")
        .remove(&job.key);
    job.fulfill(terminal);
}

/// Serves forever on `addr`, writing a parseable `listening on <addr>`
/// line to `out` once bound — the entry point behind the `atim-serve`
/// binary, split out so tests can drive it.
///
/// # Errors
/// Propagates the bind failure.
pub fn serve_forever(
    session: Session,
    addr: impl ToSocketAddrs,
    options: ServeOptions,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let handle = serve(session, addr, options)?;
    let _ = writeln!(out, "listening on {}", handle.addr());
    let _ = out.flush();
    handle.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use atim_core::AnalyticBackend;
    use atim_sim::UpmemConfig;

    fn test_session() -> Session {
        Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .build()
    }

    #[test]
    fn serves_stats_and_shuts_down_on_request() {
        let handle = serve(test_session(), "127.0.0.1:0", ServeOptions::default()).unwrap();
        let client = Client::new(handle.addr());
        let stats = client.stats().unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.tunes_run, 0);
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn rejects_malformed_and_unknown_requests_with_error_frames() {
        let handle = serve(test_session(), "127.0.0.1:0", ServeOptions::default()).unwrap();
        let client = Client::new(handle.addr());

        let err = client
            .tune(&TuneRequest::quick("conv2d", vec![64]))
            .unwrap_err();
        assert!(err.to_string().contains("unknown workload"), "{err}");

        let err = client
            .tune(&TuneRequest::quick("mtv", vec![64]))
            .unwrap_err();
        assert!(err.to_string().contains("bad shape"), "{err}");

        let mut zero = TuneRequest::quick("mtv", vec![64, 64]);
        zero.trials = 0;
        let err = client.tune(&zero).unwrap_err();
        assert!(err.to_string().contains("trials"), "{err}");

        handle.shutdown();
    }

    #[test]
    fn tunes_on_miss_then_hits_the_cache() {
        let path = std::env::temp_dir().join("atim_serve_unit_cache_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let session = Session::builder()
            .backend(AnalyticBackend::new(UpmemConfig::default()))
            .schedule_cache(&path)
            .build();
        let handle = serve(session, "127.0.0.1:0", ServeOptions::default()).unwrap();
        let client = Client::new(handle.addr());
        let request = TuneRequest::quick("gemv", vec![1024, 1024]);

        let first = client.tune(&request).unwrap();
        assert!(!first.cache_hit);
        assert!(first.measured > 0);

        let second = client.tune(&request).unwrap();
        assert!(second.cache_hit, "second identical request must hit");
        assert_eq!(second.measured, 0);
        assert_eq!(second.trace, first.trace);
        assert_eq!(second.latency_s, first.latency_s);

        let stats = handle.stats();
        assert_eq!(stats.tunes_run, 1);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.cache_entries >= 1);
        handle.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn watch_streams_progress_frames_before_the_result() {
        let handle = serve(test_session(), "127.0.0.1:0", ServeOptions::default()).unwrap();
        let client = Client::new(handle.addr());
        let mut request = TuneRequest::quick("mtv", vec![512, 512]);
        request.watch = true;
        let mut progress = Vec::new();
        let reply = client
            .tune_watch(&request, |p| progress.push(p.clone()))
            .unwrap();
        assert_eq!(progress.len(), reply.measured);
        assert!(progress.windows(2).all(|w| w[0].trial < w[1].trial));
        assert_eq!(
            progress.last().unwrap().best_latency_s,
            reply.latency_s,
            "the last streamed best must equal the final result"
        );
        handle.shutdown();
    }
}
