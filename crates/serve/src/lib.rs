//! # atim-serve — tuning-as-a-service for the ATiM stack
//!
//! Search-found schedules only beat hand-tuned UPMEM kernels if someone
//! pays for the search; this crate amortizes that cost fleet-wide instead
//! of per process.  A long-running localhost server owns one
//! [`atim_core::Session`] with a persistent
//! [`ScheduleCache`](atim_autotune::ScheduleCache) attached:
//!
//! * **cache hits** answer in microseconds, with zero measurements;
//! * **misses** queue onto a shared work queue, deduplicated in flight —
//!   two clients requesting the same GEMV shape tune *once* and both get
//!   the result;
//! * waiting clients can stream per-trial progress frames
//!   ([`proto::Progress`]), mirroring the
//!   [`TuningObserver`](atim_autotune::TuningObserver) callbacks;
//! * shutdown composes with [`CancelToken`](atim_autotune::CancelToken) /
//!   [`Budget`](atim_autotune::Budget): stopping the server stops in-flight
//!   searches at their next batch.
//!
//! Everything runs on `std` alone: [`std::net::TcpListener`], threads, and
//! 4-byte length-prefixed JSON frames ([`wire`]) over the repo's
//! dependency-free JSON layer.
//!
//! # Example
//!
//! ```
//! use atim_core::{AnalyticBackend, Session};
//! use atim_serve::{serve, Client, ServeOptions, TuneRequest};
//! use atim_sim::UpmemConfig;
//!
//! // An in-process server on an ephemeral port (the binary does the same
//! // on a fixed port; real deployments attach `.schedule_cache(path)`).
//! let session = Session::builder()
//!     .backend(AnalyticBackend::new(UpmemConfig::default()))
//!     .build();
//! let handle = serve(session, "127.0.0.1:0", ServeOptions::default()).unwrap();
//!
//! let client = Client::new(handle.addr());
//! let reply = client.tune(&TuneRequest::quick("mtv", vec![256, 256])).unwrap();
//! assert!(reply.latency_s.is_finite());
//! handle.shutdown();
//! ```

pub mod client;
pub mod proto;
pub mod server;

/// The frame transport, re-exported from the shared [`atim_wire`] crate —
/// the measurement fleet (`atim_core::fleet`) speaks the same frames.
/// Existing `atim_serve::wire::*` paths keep working unchanged.
pub use atim_wire as wire;

pub use atim_wire::{
    decode_frame, encode_frame, read_frame, write_frame, WireError, MAX_FRAME_LEN,
};
pub use client::{Client, ClientError};
pub use proto::{Progress, Request, Response, StatsReply, TuneReply, TuneRequest};
pub use server::{serve, serve_forever, ServeOptions, ServerHandle, ServerStats};
