//! The wire format: length-prefixed JSON frames over a byte stream.
//!
//! Each frame is a 4-byte big-endian length followed by exactly that many
//! bytes of UTF-8 JSON (the same dependency-free [`Json`] layer the tune
//! logs and the schedule cache use).  The format is deliberately dumb: no
//! multiplexing, no compression, no negotiation — a connection carries one
//! request frame up and a short sequence of response frames down.
//!
//! Error taxonomy mirrors the truncated-`TuneLog` tolerance contract: a
//! clean EOF *between* frames is [`WireError::Closed`] (the peer hung up,
//! normal), an EOF *inside* a frame is [`WireError::Truncated`] (the peer
//! died mid-write, abnormal), and both are distinct from malformed JSON
//! ([`WireError::Parse`]).

use std::fmt;
use std::io::{self, Read, Write};

use atim_autotune::{Json, JsonError};

/// Upper bound on a single frame's payload, in bytes.  Tuning requests and
/// results are tiny; anything near this bound is a corrupt or hostile
/// length prefix, rejected before allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors reading or writing frames.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended in the middle of a frame (header or payload).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload is not valid UTF-8 JSON.
    Parse(JsonError),
    /// An underlying I/O failure other than EOF.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::Parse(e) => write!(f, "frame payload is not valid JSON: {e}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Parse(e)
    }
}

/// Encodes one frame: 4-byte big-endian payload length, then the payload.
pub fn encode_frame(json: &Json) -> Vec<u8> {
    let payload = json.to_string();
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decodes one frame from the front of `bytes`, returning the value and
/// the number of bytes consumed.
///
/// # Errors
/// [`WireError::Truncated`] when `bytes` holds less than one whole frame
/// (including the empty buffer), [`WireError::TooLarge`] /
/// [`WireError::Parse`] for corrupt prefixes or payloads.
pub fn decode_frame(bytes: &[u8]) -> Result<(Json, usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    if bytes.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    let payload = std::str::from_utf8(&bytes[4..4 + len]).map_err(|_| {
        WireError::Parse(JsonError {
            message: "frame payload is not UTF-8".into(),
            offset: None,
        })
    })?;
    Ok((Json::parse(payload)?, 4 + len))
}

/// Reads exactly `buf.len()` bytes; distinguishes EOF-at-a-frame-boundary
/// (`start` true) from EOF mid-frame.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], start: bool) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if start && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame.
///
/// # Errors
/// [`WireError::Closed`] on a clean EOF before any header byte,
/// [`WireError::Truncated`] on EOF inside the frame, and the corrupt-frame
/// variants of [`decode_frame`].
pub fn read_frame(r: &mut impl Read) -> Result<Json, WireError> {
    let mut header = [0u8; 4];
    read_exact_or(r, &mut header, true)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    let text = String::from_utf8(payload).map_err(|_| {
        WireError::Parse(JsonError {
            message: "frame payload is not UTF-8".into(),
            offset: None,
        })
    })?;
    Ok(Json::parse(&text)?)
}

/// Writes one frame and flushes.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_frame(w: &mut impl Write, json: &Json) -> Result<(), WireError> {
    w.write_all(&encode_frame(json))?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("tune".into())),
            ("shape".into(), Json::Arr(vec![Json::Int(64), Json::Int(8)])),
        ])
    }

    #[test]
    fn frames_round_trip_through_byte_buffers_and_streams() {
        let bytes = encode_frame(&obj());
        let (decoded, used) = decode_frame(&bytes).unwrap();
        assert_eq!(decoded, obj());
        assert_eq!(used, bytes.len());

        let mut cursor = io::Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), obj());
        // The stream is exhausted: the next read is a clean close.
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn every_truncation_point_is_detected_not_misparsed() {
        let bytes = encode_frame(&obj());
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
            let mut cursor = io::Cursor::new(&bytes[..cut]);
            match read_frame(&mut cursor) {
                Err(WireError::Closed) if cut == 0 => {}
                Err(WireError::Truncated) if cut > 0 => {}
                other => panic!("stream cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_before_allocation() {
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        bytes.extend_from_slice(b"{}");
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::TooLarge(0xFFFF_FFFF))
        ));
        let mut cursor = io::Cursor::new(&bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge(0xFFFF_FFFF))
        ));
    }

    #[test]
    fn garbage_payloads_are_parse_errors() {
        let mut bytes = 3u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"{{{");
        assert!(matches!(decode_frame(&bytes), Err(WireError::Parse(_))));
        let mut invalid = 1u32.to_be_bytes().to_vec();
        invalid.push(0xFF); // not UTF-8
        assert!(matches!(decode_frame(&invalid), Err(WireError::Parse(_))));
    }
}
