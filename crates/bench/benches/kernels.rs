//! Criterion benchmarks of the compile + simulate pipeline for
//! representative kernels (the machinery behind Fig. 9/10's measurements).
//!
//! These are *harness* benchmarks: they measure how fast ATiM-RS itself can
//! evaluate one schedule candidate (compile, optimize, simulate), which is
//! the unit of work every experiment binary repeats thousands of times.

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn config_2d(spatial: i64, reduce: i64) -> ScheduleConfig {
    ScheduleConfig {
        spatial_dpus: vec![spatial],
        reduce_dpus: reduce,
        tasklets: 16,
        cache_elems: 64,
        use_cache: true,
        unroll: true,
        host_threads: 16,
        parallel_transfer: true,
    }
}

fn bench_compile(c: &mut Criterion) {
    let session = Session::default();
    let def = ComputeDef::gemv("gemv", 1024, 1024, 1.0);
    let cfg = config_2d(64, 4);
    c.bench_function("compile_gemv_1k", |b| {
        b.iter(|| session.compile_config(&cfg, &def).unwrap())
    });
}

fn bench_simulate(c: &mut Criterion) {
    let session = Session::default();
    let mut group = c.benchmark_group("simulate_timing_only");
    for (name, def, cfg) in [
        ("va_1m", ComputeDef::va("va", 1 << 20), config_2d(1024, 1)),
        (
            "gemv_1k",
            ComputeDef::gemv("gemv", 1024, 1024, 1.0),
            config_2d(64, 4),
        ),
        (
            "mmtv_small",
            ComputeDef::mmtv("mmtv", 16, 64, 256),
            config_2d(16, 1),
        ),
    ] {
        let module = session.compile_config(&cfg, &def).unwrap();
        group.bench_function(name, |b| b.iter(|| session.time(&module).unwrap()));
    }
    group.finish();
}

fn bench_full_execution(c: &mut Criterion) {
    let session = Session::default();
    let def = ComputeDef::mtv("mtv", 256, 256);
    let cfg = config_2d(16, 2);
    let module = session.compile_config(&cfg, &def).unwrap();
    let inputs = atim_workloads::data::generate_inputs(&def, 3);
    c.bench_function("execute_functional_mtv_256", |b| {
        b.iter(|| session.execute(&module, &inputs).unwrap())
    });
}

criterion_group!(benches, bench_compile, bench_simulate, bench_full_execution);
criterion_main!(benches);
