//! Criterion benchmarks of the autotuning loop itself: candidate generation,
//! verification, cost-model ranking and measurement (the machinery behind
//! Fig. 14/15).

use atim_autotune::{tune, tune_batch, ScheduleConfig, Trace, TuningOptions};
use atim_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_verifier(c: &mut Criterion) {
    let def = ComputeDef::gemv("gemv", 4096, 4096, 1.0);
    let hw = UpmemConfig::default();
    let cfg = ScheduleConfig {
        spatial_dpus: vec![256],
        reduce_dpus: 8,
        tasklets: 16,
        cache_elems: 64,
        use_cache: true,
        unroll: true,
        host_threads: 16,
        parallel_transfer: true,
    };
    c.bench_function("verify_candidate", |b| {
        b.iter(|| atim_autotune::verify_trace(&cfg.to_trace(&def), &def, &hw).unwrap())
    });
}

fn bench_small_tuning_session(c: &mut Criterion) {
    let session = Session::default();
    let def = ComputeDef::mtv("mtv", 1024, 1024);
    let options = TuningOptions {
        trials: 16,
        population: 16,
        measure_per_round: 8,
        ..TuningOptions::default()
    };
    let mut group = c.benchmark_group("tuning_session");
    // A full (if small) tuning session per iteration: keep the sample count
    // low so `cargo bench` stays quick.
    group.sample_size(10);
    group.bench_function("tune_16_trials_mtv_1k", |b| {
        b.iter(|| {
            let mut measurer = |t: &Trace| session.measure(t, &def);
            tune(&def, session.hardware(), &options, &mut measurer)
        })
    });
    group.bench_function("tune_batch_parallel_16_trials_mtv_1k", |b| {
        b.iter(|| {
            // Fresh measurer per iteration so the memo cache does not carry
            // over between timed runs.
            let mut measurer = BackendMeasurer::new(session.backend(), &def);
            tune_batch(&def, session.hardware(), &options, &mut measurer)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_verifier, bench_small_tuning_session);
criterion_main!(benches);
