//! Criterion benchmarks of the PIM-aware optimization passes and their
//! effect on simulated kernel latency (the machinery behind Fig. 12/13).

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use atim_core::{compile_config, CompileOptions};
use atim_passes::optimize_kernel;
use criterion::{criterion_group, criterion_main, Criterion};

fn misaligned_gemv() -> (ComputeDef, ScheduleConfig) {
    let def = ComputeDef::gemv("gemv", 245, 245, 1.0);
    let cfg = ScheduleConfig {
        spatial_dpus: vec![8],
        reduce_dpus: 1,
        tasklets: 8,
        cache_elems: 64,
        use_cache: true,
        unroll: false,
        host_threads: 1,
        parallel_transfer: true,
    };
    (def, cfg)
}

fn bench_pass_pipeline(c: &mut Criterion) {
    let (def, cfg) = misaligned_gemv();
    let sch = cfg.to_trace(&def).apply(&def).unwrap();
    let lowered = sch.lower().unwrap();
    let mut group = c.benchmark_group("pass_pipeline");
    for level in OptLevel::ALL {
        group.bench_function(level.label(), |b| {
            b.iter(|| optimize_kernel(lowered.kernel.body.clone(), level))
        });
    }
    group.finish();
}

fn bench_opt_level_latency(c: &mut Criterion) {
    // Measures the simulated kernel, demonstrating that higher optimization
    // levels also *simulate* faster (fewer interpreted events), which is what
    // keeps the experiment harness tractable.
    let session = Session::default();
    let (def, cfg) = misaligned_gemv();
    let mut group = c.benchmark_group("simulate_by_opt_level");
    for level in OptLevel::ALL {
        let module = compile_config(
            &cfg,
            &def,
            CompileOptions {
                opt_level: level,
                parallel_transfer: true,
            },
            session.hardware(),
        )
        .unwrap();
        group.bench_function(level.label(), |b| b.iter(|| session.time(&module).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_pass_pipeline, bench_opt_level_latency);
criterion_main!(benches);
