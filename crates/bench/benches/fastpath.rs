//! Criterion micro-bench of the measurement fast path: the same timing-only
//! kernel execution through the tree interpreter, the compiled bytecode, and
//! the optimized bytecode (constant folding, affine fusion, hoisting and
//! timing-only loop summarization — `ATIM_SIM_FASTPATH`).
//!
//! This is the per-candidate unit of work the autotuner repeats thousands of
//! times, so the ratios here translate directly into trials-per-budget.

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use atim_sim::{SimMode, UpmemMachine};
use atim_tir::eval::{CompiledProgram, CompiledRunner, ExecMode, Interpreter, MemoryStore};
use atim_tir::schedule::Lowered;
use criterion::{criterion_group, criterion_main, Criterion};

// `CountingTracer` is the tir-level stand-in for the simulator's DPU
// counters; alias it so the intent reads clearly at the call sites.
use atim_tir::eval::CountingTracer as KernelCounters;

fn lowered_gemv() -> Lowered {
    let session = Session::default();
    let def = ComputeDef::gemv("gemv", 2048, 512, 1.0);
    // No unrolling: the 64-element WRAM compute loop stays a loop, which is
    // the shape the timing-only summarizer collapses (unrolled bodies
    // already dispatch few loop iterations and gain little).
    let cfg = ScheduleConfig {
        spatial_dpus: vec![64],
        reduce_dpus: 4,
        tasklets: 12,
        cache_elems: 64,
        use_cache: true,
        unroll: false,
        host_threads: 16,
        parallel_transfer: true,
    };
    session.compile_config(&cfg, &def).unwrap().lowered
}

/// Runs one DPU's kernel in timing-only mode through `run`, asserting it
/// traced a non-trivial amount of work.
fn bench_kernel_engines(c: &mut Criterion) {
    let lowered = lowered_gemv();
    let (linear, coords) = lowered.grid.enumerate()[0].clone();
    let compiled = CompiledProgram::compile(&lowered.kernel.body);
    let optimized = compiled.optimize();

    let mut group = c.benchmark_group("timing_kernel");
    group.bench_function("interpreter", |b| {
        b.iter(|| {
            let mut store = MemoryStore::new();
            let mut tracer = KernelCounters::default();
            let mut interp = Interpreter::new(&mut store, &mut tracer, ExecMode::TimingOnly);
            interp.set_dpu(linear);
            for (dim, coord) in lowered.grid.dims.iter().zip(&coords) {
                interp.bind(&dim.var, *coord);
            }
            interp.run(&lowered.kernel.body).unwrap();
            tracer
        })
    });
    for (name, program) in [("compiled", &compiled), ("compiled_fastpath", &optimized)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut store = MemoryStore::new();
                let mut tracer = KernelCounters::default();
                let mut runner = CompiledRunner::new(program);
                runner.set_dpu(linear);
                for (dim, coord) in lowered.grid.dims.iter().zip(&coords) {
                    runner.bind(&dim.var, *coord);
                }
                runner
                    .run(&mut store, &mut tracer, ExecMode::TimingOnly)
                    .unwrap();
                tracer
            })
        });
    }
    group.finish();
}

/// Whole timing-only measurements (transfers + kernel + reduction) with the
/// fast path off vs on — the end-to-end per-candidate cost.
fn bench_full_measurement(c: &mut Criterion) {
    let lowered = lowered_gemv();
    let mut group = c.benchmark_group("timing_measurement");
    for (name, fastpath) in [("slowpath", false), ("fastpath", true)] {
        let machine = UpmemMachine::with_fastpath(UpmemConfig::default(), fastpath);
        group.bench_function(name, |b| {
            b.iter(|| machine.run(&lowered, &[], SimMode::TimingOnly).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_engines, bench_full_measurement);
criterion_main!(benches);
