//! # atim-bench — experiment harnesses for every table and figure
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the full index and `EXPERIMENTS.md` for
//! recorded results):
//!
//! | Binary              | Paper artifact |
//! |----------------------|----------------|
//! | `fig03_motivation`   | Fig. 3 (caching tile / tiling scheme / #DPUs sweeps) |
//! | `fig04_boundary`     | Fig. 4 (boundary-check impact, CPU vs UPMEM) |
//! | `fig09_tensor_ops`   | Fig. 9 (7 tensor ops × sizes × 5 configurations) |
//! | `table3_params`      | Table 3 (autotuned parameters) |
//! | `fig10_gptj`         | Fig. 10 (GPT-J 6B/30B MTV + MMTV) |
//! | `fig11_mmtv_sweep`   | Fig. 11 (MMTV speedup vs spatial size) |
//! | `fig12_pim_opts`     | Fig. 12 (PIM-aware optimization ablation) |
//! | `fig13_breakdown`    | Fig. 13 (DPU cycle breakdown under the ablation) |
//! | `fig14_search`       | Fig. 14 (balanced search convergence) |
//! | `fig15_tuning_cost`  | Fig. 15 (per-iteration tuning cost) |
//! | `sketch_spaces`      | Schedule-space comparison: every resident generator × workload (incl. batched GEMM / attention / int8) |
//!
//! The library part provides the shared measurement helpers: running every
//! baseline configuration and ATiM's autotuned configuration through the
//! same compile + simulate pipeline, on one shared [`Session`].
//!
//! Harness knobs (environment variables):
//!
//! * `ATIM_TRIALS` — autotuning trials per workload (default 48; the paper
//!   uses 1000, which also works but takes correspondingly longer).
//! * `ATIM_FULL` — set to `1` to run every paper size; by default the larger
//!   256/512 MB presets are skipped to keep a full harness sweep short.
//! * `ATIM_TUNE_LOG` — a directory for persistent tuning logs.  Each tuned
//!   workload streams its search there one flushed record per trial;
//!   re-running a harness **replays** a complete log instead of
//!   re-searching (tune once, serve many runs) and **resumes** an
//!   incomplete one left by a crash via warm-start.
//! * `ATIM_SIM_FASTPATH` — the simulator's bytecode fast path (default on;
//!   `0` disables).  Latencies are bit-identical either way.
//! * `ATIM_FLEET_WORKERS` — fan each tuning round's measurements across N
//!   local `atim-worker` processes (default: unset, in-process).  Results
//!   are bit-identical to in-process measurement; dead workers degrade the
//!   fleet gracefully instead of failing a sweep.
//!
//! # Example
//!
//! ```
//! use atim_bench::{select_sizes, trials_from_env};
//! use atim_workloads::ops::presets_for;
//! use atim_workloads::WorkloadKind;
//!
//! // Harness knobs come from the environment (`ATIM_TRIALS`, `ATIM_FULL`),
//! // so only assert what holds for any setting: filtering never grows the
//! // sweep.
//! let all = presets_for(WorkloadKind::Va);
//! let sizes = select_sizes(presets_for(WorkloadKind::Va));
//! assert!(sizes.len() <= all.len());
//! println!("sweep: {} sizes x {} trials", sizes.len(), trials_from_env());
//! ```

use std::path::PathBuf;

use atim_autotune::{ScheduleConfig, StreamingTuneLog, Trace, TuneLog, TuningOptions};
use atim_baselines::prim::{prim_default, prim_e_candidates, prim_search_candidates};
use atim_baselines::simplepim::{adjust_report, simplepim_config, SimplePimOverheads};
use atim_core::prelude::*;
use atim_sim::ExecutionReport;
use atim_workloads::Workload;

/// Environment variable naming a directory for persistent tuning logs.
pub const TUNE_LOG_ENV: &str = "ATIM_TUNE_LOG";

/// The shared harness session: the paper-sized simulated machine, measured
/// in-process by default, or across an `ATIM_FLEET_WORKERS`-sized fleet of
/// local worker processes.  Either way the measured latencies — and hence
/// every figure — are bit-identical; the fleet only changes wall-clock.
///
/// # Panics
/// Panics when `ATIM_FLEET_WORKERS` is set but the fleet cannot launch
/// (an explicitly requested fleet must never silently degrade to nothing),
/// and on invalid `ATIM_MEASURE_THREADS` values like [`Session::default`].
pub fn session() -> Session {
    match FleetBackend::from_env(BackendSpec::sim(UpmemConfig::default())) {
        Some(fleet) => {
            eprintln!(
                "atim-bench: measuring on a fleet of {} worker process(es)",
                fleet.workers_alive()
            );
            Session::builder().backend(fleet).build()
        }
        None => Session::default(),
    }
}

/// A harness session tuning from one **explicit** resident schedule space
/// (`"upmem"`, `"tiled"`, `"hw-native"`), used by the generator-comparison
/// sweeps.  Like [`session`], an `ATIM_FLEET_WORKERS`-sized fleet measures
/// when requested — its workers are configured for the same generator, so
/// the sweep's jobs stay fleet-remotable.
///
/// # Panics
/// Panics on an unknown generator id, and on fleet-launch failure like
/// [`session`].
pub fn session_for_generator(id: &str) -> Session {
    let generator = resolve_generator(id).unwrap_or_else(|| {
        panic!("unknown space generator {id:?}; known ids: {RESIDENT_GENERATOR_IDS:?}")
    });
    let builder = match atim_core::fleet::workers_from_env() {
        Some(workers) => {
            let mut options = FleetOptions::from_env();
            options.space_generator = Some(id.to_string());
            let fleet =
                FleetBackend::spawn(BackendSpec::sim(UpmemConfig::default()), workers, options)
                    .unwrap_or_else(|e| {
                        panic!("failed to launch the measurement fleet for {id:?}: {e}")
                    });
            Session::builder().backend(fleet)
        }
        None => Session::builder().hardware(UpmemConfig::default()),
    };
    builder.space_generator_arc(generator).build()
}

/// Number of autotuning trials used by the harnesses.
pub fn trials_from_env() -> usize {
    std::env::var("ATIM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Whether the harness should run every paper-sized preset.
pub fn full_from_env() -> bool {
    std::env::var("ATIM_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Filters size presets according to `ATIM_FULL`.
pub fn select_sizes(all: Vec<(String, Workload)>) -> Vec<(String, Workload)> {
    if full_from_env() {
        all
    } else {
        all.into_iter()
            .filter(|(label, _)| label == "4MB" || label == "64MB")
            .collect()
    }
}

/// The tuning-log path for one workload under `ATIM_TUNE_LOG`, or `None`
/// when the knob is unset.  The file name keys on the workload kind, the
/// *exact shape* and the trial budget — the human-readable size label
/// rounds to whole megabytes, so distinct shapes (e.g. GPT-J's
/// `[16,512,256]` and `[64,128,256]` MMTVs) would collide under it and
/// silently replay each other's searches.
pub fn tune_log_path(workload: &Workload, trials: usize) -> Option<PathBuf> {
    tune_log_path_for(workload, trials, "upmem")
}

/// [`tune_log_path`] keyed additionally on the schedule-space generator:
/// the default `"upmem"` space keeps the legacy
/// `{kind}_{shape}_t{trials}.json` name (existing corpora stay valid),
/// while other generators append their id so a generator-comparison sweep
/// never replays a different space's search as its own.
pub fn tune_log_path_for(workload: &Workload, trials: usize, generator: &str) -> Option<PathBuf> {
    let dir = std::env::var(TUNE_LOG_ENV).ok()?;
    let shape: Vec<String> = workload.shape.iter().map(|d| d.to_string()).collect();
    let suffix = if generator == "upmem" {
        String::new()
    } else {
        format!("_{generator}")
    };
    Some(PathBuf::from(dir).join(format!(
        "{}_{}_t{trials}{suffix}.json",
        workload.kind,
        shape.join("x")
    )))
}

/// One evaluated configuration of one workload.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Configuration label (`PrIM`, `PrIM(E)`, `PrIM+search`, `SimplePIM`,
    /// `ATiM`, `CPU`).
    pub config: String,
    /// Timing report (empty for the CPU baseline except `kernel_s`).
    pub report: ExecutionReport,
}

impl Measurement {
    /// Total latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.report.total_ms()
    }
}

/// Times one candidate trace of a workload (timing-only simulation).
/// Returns `None` when the candidate cannot run on the machine.
pub fn time_trace(
    session: &Session,
    workload: &Workload,
    trace: &Trace,
) -> Option<ExecutionReport> {
    let def = workload.compute_def();
    let module = session.compile(trace, &def).ok()?;
    session.time(&module).ok()
}

/// Times one knob-vector configuration (the form the PrIM/SimplePIM
/// baselines are expressed in).
pub fn time_config(
    session: &Session,
    workload: &Workload,
    cfg: &ScheduleConfig,
) -> Option<ExecutionReport> {
    time_trace(session, workload, &cfg.to_trace(&workload.compute_def()))
}

/// Times the PrIM default configuration.
pub fn prim_report(session: &Session, workload: &Workload) -> Option<ExecutionReport> {
    time_config(
        session,
        workload,
        &prim_default(workload, session.hardware()),
    )
}

/// Times the best configuration of the PrIM(E) DPU-count grid.
pub fn prim_e_report(session: &Session, workload: &Workload) -> Option<ExecutionReport> {
    best_of(
        session,
        workload,
        prim_e_candidates(workload, session.hardware()),
    )
}

/// Times the best configuration of the PrIM+search grid (DPU count ×
/// tasklets × caching tile).
pub fn prim_search_report(session: &Session, workload: &Workload) -> Option<ExecutionReport> {
    best_of(
        session,
        workload,
        prim_search_candidates(workload, session.hardware()),
    )
}

/// Times the SimplePIM framework (1-D workloads only).
pub fn simplepim_report(session: &Session, workload: &Workload) -> Option<ExecutionReport> {
    if !atim_baselines::simplepim::supports(workload.kind) {
        return None;
    }
    let cfg = simplepim_config(workload, session.hardware());
    let base = time_config(session, workload, &cfg)?;
    Some(adjust_report(
        workload,
        &base,
        &SimplePimOverheads::default(),
    ))
}

/// CPU-autotuned latency wrapped in a report (kernel time only: there is no
/// offload, so every transfer component is zero).
pub fn cpu_report(workload: &Workload, hw: &UpmemConfig) -> ExecutionReport {
    let est = atim_baselines::cpu::cpu_latency(workload, hw);
    ExecutionReport {
        kernel_s: est.time_s,
        ..Default::default()
    }
}

/// Autotunes ATiM for a workload — or, when `ATIM_TUNE_LOG` names a
/// directory holding a log for this workload and budget, replays the saved
/// search without re-searching.
///
/// Fresh searches are **streamed** to the log path one trial at a time
/// (JSON-lines with per-record flushes), so a crashed or interrupted harness
/// loses at most the trial being written.  An incomplete log found on the
/// next run is not discarded: the search warm-starts from its records —
/// replaying the recorded prefix bit-identically, measuring only the
/// remainder — while re-streaming the completed log to the same path.
pub fn atim_tuned(session: &Session, workload: &Workload, trials: usize) -> TunedModule {
    let def = workload.compute_def();
    let options = TuningOptions {
        trials,
        population: (trials * 2).clamp(16, 128),
        measure_per_round: (trials / 4).clamp(4, 16),
        ..TuningOptions::default()
    };
    let log_path = tune_log_path_for(workload, trials, session.space_generator().name());
    let mut resume: Option<TuneLog> = None;
    if let Some(path) = &log_path {
        if let Ok(log) = TuneLog::load(path) {
            // A log recorded for a different workload (stale file, renamed
            // preset) must never be replayed as this one.
            if log.workload == def.name {
                if log.complete {
                    return session.replay(&def, &log);
                }
                eprintln!(
                    "# resuming interrupted tuning log {} ({} recorded trials)",
                    path.display(),
                    log.len()
                );
                resume = Some(log);
            } else {
                eprintln!(
                    "# warning: ignoring tuning log {} recorded for workload \"{}\" \
                     (expected \"{}\")",
                    path.display(),
                    log.workload,
                    def.name
                );
            }
        }
    }
    // A fresh search streams straight to the log path (there is nothing to
    // lose); a *resumed* search streams to a sibling temp file and renames
    // it over the original only after finishing, so the already-persisted
    // prefix survives even if the resumed run crashes too.
    let stream_path = log_path.as_ref().map(|path| {
        if resume.is_some() {
            path.with_extension("json.tmp")
        } else {
            path.clone()
        }
    });
    let mut observer: Box<dyn TuningObserver> = match &stream_path {
        Some(path) => {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).ok();
            }
            match StreamingTuneLog::create(path, &def.name, options.seed) {
                Ok(stream) => Box::new(stream),
                Err(err) => {
                    eprintln!(
                        "# warning: cannot stream tuning log {}: {err}",
                        path.display()
                    );
                    Box::new(NullObserver)
                }
            }
        }
        None => Box::new(NullObserver),
    };
    let tuned = match &resume {
        Some(log) => session.tune_warm(&def, &options, log, &Budget::unlimited(), &mut *observer),
        None => session.tune_observed(&def, &options, &Budget::unlimited(), &mut *observer),
    };
    drop(observer);
    if resume.is_some() {
        if let (Some(tmp), Some(path)) = (&stream_path, &log_path) {
            if tmp != path {
                if let Err(err) = std::fs::rename(tmp, path) {
                    eprintln!(
                        "# warning: could not finalize resumed tuning log {}: {err}",
                        path.display()
                    );
                }
            }
        }
    }
    tuned.expect("harness tuning options are valid")
}

/// Autotunes ATiM for a workload and times the best trace.
pub fn atim_report(
    session: &Session,
    workload: &Workload,
    trials: usize,
) -> (Trace, ExecutionReport) {
    let tuned = atim_tuned(session, workload, trials);
    let trace = tuned.best_trace().clone();
    let report = time_trace(session, workload, &trace).unwrap_or_default();
    (trace, report)
}

fn best_of(
    session: &Session,
    workload: &Workload,
    candidates: Vec<ScheduleConfig>,
) -> Option<ExecutionReport> {
    candidates
        .into_iter()
        .filter_map(|c| time_config(session, workload, &c))
        .min_by(|a, b| {
            a.total_s()
                .partial_cmp(&b.total_s())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Runs every configuration of Fig. 9/10 for one workload.
pub fn evaluate_workload(
    session: &Session,
    workload: &Workload,
    trials: usize,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    if let Some(r) = prim_report(session, workload) {
        out.push(Measurement {
            config: "PrIM".into(),
            report: r,
        });
    }
    if let Some(r) = prim_e_report(session, workload) {
        out.push(Measurement {
            config: "PrIM(E)".into(),
            report: r,
        });
    }
    if let Some(r) = prim_search_report(session, workload) {
        out.push(Measurement {
            config: "PrIM+search".into(),
            report: r,
        });
    }
    if let Some(r) = simplepim_report(session, workload) {
        out.push(Measurement {
            config: "SimplePIM".into(),
            report: r,
        });
    }
    let (_, r) = atim_report(session, workload, trials);
    out.push(Measurement {
        config: "ATiM".into(),
        report: r,
    });
    out.push(Measurement {
        config: "CPU".into(),
        report: cpu_report(workload, session.hardware()),
    });
    out
}

/// Prints a CSV-style results table normalized to the first PIM entry
/// (PrIM), in the style of the paper's Fig. 9/10 bars plus the CPU-speedup
/// line.
pub fn print_normalized_table(title: &str, workload: &Workload, rows: &[Measurement]) {
    println!("# {title} — {}", workload.label());
    println!("config,h2d_ms,kernel_ms,d2h_reduce_ms,total_ms,normalized_to_prim,speedup_over_cpu");
    let prim_total = rows
        .iter()
        .find(|m| m.config == "PrIM")
        .map(|m| m.total_ms())
        .unwrap_or(f64::NAN);
    let cpu_total = rows
        .iter()
        .find(|m| m.config == "CPU")
        .map(|m| m.total_ms())
        .unwrap_or(f64::NAN);
    for m in rows {
        let r = &m.report;
        println!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.3},{:.2}",
            m.config,
            r.h2d_s * 1e3,
            r.kernel_s * 1e3,
            (r.d2h_s + r.reduce_s) * 1e3,
            m.total_ms(),
            m.total_ms() / prim_total,
            cpu_total / m.total_ms(),
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_workloads::WorkloadKind;

    #[test]
    fn evaluate_small_workload_produces_all_configs() {
        let session = Session::default();
        let w = Workload::new(WorkloadKind::Va, vec![1 << 16]);
        let rows = evaluate_workload(&session, &w, 8);
        let names: Vec<&str> = rows.iter().map(|m| m.config.as_str()).collect();
        assert!(names.contains(&"PrIM"));
        assert!(names.contains(&"PrIM+search"));
        assert!(names.contains(&"SimplePIM"));
        assert!(names.contains(&"ATiM"));
        assert!(names.contains(&"CPU"));
        assert!(rows.iter().all(|m| m.total_ms() > 0.0));
    }

    #[test]
    fn simplepim_is_skipped_for_matrix_workloads() {
        let session = Session::default();
        let w = Workload::new(WorkloadKind::Mtv, vec![512, 512]);
        assert!(simplepim_report(&session, &w).is_none());
        assert!(prim_report(&session, &w).is_some());
    }

    #[test]
    fn env_knobs_have_defaults() {
        assert!(trials_from_env() > 0);
        let sizes = select_sizes(atim_workloads::ops::presets_for(WorkloadKind::Mtv));
        assert!(!sizes.is_empty());
    }

    #[test]
    fn tune_log_paths_key_on_workload_and_budget() {
        // The env var is process-global; only exercise the pure layout
        // logic by checking the None path here.
        if std::env::var(TUNE_LOG_ENV).is_err() {
            let w = Workload::new(WorkloadKind::Mtv, vec![64, 64]);
            assert!(tune_log_path(&w, 8).is_none());
        }
    }
}
