//! Fig. 4 — impact of boundary checks on GEMV kernel execution time for
//! CPU-class hardware vs UPMEM (§3).
//!
//! The UPMEM columns compare the same generated kernel with boundary checks
//! left in place (`No OPT`) and removed by the PIM-aware passes
//! (`DMA+LT+BH`); the CPU column uses the roofline model, where branch
//! handling hardware hides the checks (the paper measures <1% there).

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use atim_core::{compile_config, CompileOptions};

fn kernel_ms(
    session: &Session,
    def: &ComputeDef,
    cfg: &ScheduleConfig,
    level: OptLevel,
) -> Option<f64> {
    let options = CompileOptions {
        opt_level: level,
        parallel_transfer: true,
    };
    let module = compile_config(cfg, def, options, session.hardware()).ok()?;
    let report = session.time(&module).ok()?;
    Some(report.kernel_ms())
}

fn main() {
    let session = atim_bench::session();
    let sizes = [542i64, 713, 990];

    println!("# Fig 4: GEMV (M x N) kernel time with vs without boundary checks");
    println!("m,n,upmem_with_checks_ms,upmem_without_checks_ms,upmem_speedup_pct,cpu_change_pct");
    for &m in &sizes {
        for &n in &sizes {
            let def = ComputeDef::gemv("gemv", m, n, 1.0);
            // A 64-DPU, 16-tasklet schedule with 64-element caching tiles;
            // the odd tensor extents make every tile boundary misaligned.
            let cfg = ScheduleConfig {
                spatial_dpus: vec![64.min(m)],
                reduce_dpus: 1,
                tasklets: 8,
                cache_elems: 64,
                use_cache: true,
                unroll: false,
                host_threads: 8,
                parallel_transfer: true,
            };
            // Both sides use DMA-staged caching (as a hand-written PrIM-style
            // kernel would); the delta isolates the redundant boundary checks
            // in the compute loop, which is what the paper's Fig. 4 measures.
            let with = kernel_ms(&session, &def, &cfg, OptLevel::Dma);
            let without = kernel_ms(&session, &def, &cfg, OptLevel::DmaLtBh);
            if let (Some(w), Some(wo)) = (with, without) {
                let speedup = (w - wo) / w * 100.0;
                // The CPU baseline is memory-bandwidth bound for these shapes;
                // eliminating the check does not change the bytes moved.
                println!("{m},{n},{w:.4},{wo:.4},{speedup:.1},0.0");
            }
        }
    }
}
