//! Fig. 12 — kernel performance under the PIM-aware optimization ablation
//! (`No OPT`, `DMA`, `DMA+LT`, `DMA+LT+BH`), normalized to the PrIM-style
//! hand-tuned kernel (§7.3).
//!
//! Four workload families are swept, matching the paper's sub-figures:
//! (a) MTV misaligned on the column axis, (b) misaligned on the row axis,
//! (c) misaligned on both, and (d) VA with 32 DPUs.

use atim_autotune::ScheduleConfig;
use atim_baselines::prim::prim_default;
use atim_bench::time_config;
use atim_core::prelude::*;
use atim_core::{compile_config, CompileOptions};

/// ATiM-style schedule used for the ablation: boundary misalignment comes
/// from the odd tensor extents, not from the schedule.
fn ablation_config(w: &Workload) -> ScheduleConfig {
    match w.kind {
        WorkloadKind::Va => ScheduleConfig {
            spatial_dpus: vec![32],
            reduce_dpus: 1,
            tasklets: 16,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        },
        _ => ScheduleConfig {
            spatial_dpus: vec![64.min(w.shape[0])],
            reduce_dpus: 1,
            tasklets: 8,
            cache_elems: 64,
            use_cache: true,
            unroll: false,
            host_threads: 8,
            parallel_transfer: true,
        },
    }
}

fn kernel_ms(
    session: &Session,
    w: &Workload,
    cfg: &ScheduleConfig,
    level: OptLevel,
) -> Option<f64> {
    let def = w.compute_def();
    let module = compile_config(
        cfg,
        &def,
        CompileOptions {
            opt_level: level,
            parallel_transfer: true,
        },
        session.hardware(),
    )
    .ok()?;
    session.time(&module).ok().map(|r| r.kernel_ms())
}

fn sweep(session: &Session, title: &str, workloads: &[Workload]) {
    println!("# Fig 12 {title}");
    println!("shape,prim_ms,no_opt,dma,dma_lt,dma_lt_bh (normalized to PrIM)");
    for w in workloads {
        let prim = prim_default(w, session.hardware());
        let Some(prim_ms) = time_config(session, w, &prim).map(|r| r.kernel_ms()) else {
            continue;
        };
        let cfg = ablation_config(w);
        let mut cols = Vec::new();
        for level in OptLevel::ALL {
            match kernel_ms(session, w, &cfg, level) {
                Some(ms) => cols.push(format!("{:.3}", ms / prim_ms)),
                None => cols.push("-".into()),
            }
        }
        let shape: Vec<String> = w.shape.iter().map(|d| d.to_string()).collect();
        println!("{},{:.4},{}", shape.join("x"), prim_ms, cols.join(","));
    }
    println!();
}

fn main() {
    let session = atim_bench::session();
    let lengths = [72i64, 91, 123, 145, 164, 196, 212, 245];

    let a: Vec<Workload> = lengths
        .iter()
        .map(|&l| Workload::new(WorkloadKind::Mtv, vec![256, l]))
        .collect();
    sweep(&session, "(a) MTV [256, L] x [L] — column misalignment", &a);

    let b: Vec<Workload> = lengths
        .iter()
        .map(|&l| Workload::new(WorkloadKind::Mtv, vec![l, 256]))
        .collect();
    sweep(&session, "(b) MTV [L, 256] x [256] — row misalignment", &b);

    let c: Vec<Workload> = lengths
        .iter()
        .map(|&l| Workload::new(WorkloadKind::Mtv, vec![l, l]))
        .collect();
    sweep(&session, "(c) MTV [L, L] x [L] — both axes misaligned", &c);

    let d: Vec<Workload> = (1..=8)
        .map(|l| Workload::new(WorkloadKind::Va, vec![l * 100_000]))
        .collect();
    sweep(&session, "(d) VA [L x 100000] with 32 DPUs", &d);
}
