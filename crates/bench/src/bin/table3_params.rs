//! Table 3 — autotuned parameters (number of DPUs, tasklets, caching tile
//! size) selected by PrIM, PrIM+search and ATiM for every workload and size
//! (§7.1).

use atim_autotune::{ScheduleConfig, Trace};
use atim_baselines::prim::{prim_default, prim_search_candidates};
use atim_bench::{atim_report, select_sizes, time_config, trials_from_env};
use atim_core::prelude::*;
use atim_workloads::ops::presets_for;

fn describe_trace(trace: &Trace) -> String {
    match ScheduleConfig::from_trace(trace) {
        Some(cfg) => describe(&cfg),
        None => trace.to_string(),
    }
}

fn describe(cfg: &ScheduleConfig) -> String {
    let spatial: Vec<String> = cfg.spatial_dpus.iter().map(|d| d.to_string()).collect();
    format!(
        "dpus=({}{}{}) tasklets={} cache={}",
        spatial.join("x"),
        if cfg.uses_rfactor() { "," } else { "" },
        if cfg.uses_rfactor() {
            format!("r{}", cfg.reduce_dpus)
        } else {
            String::new()
        },
        cfg.tasklets,
        cfg.cache_elems
    )
}

fn main() {
    let session = atim_bench::session();
    let trials = trials_from_env();
    println!("# Table 3: selected parameters per workload and size");
    println!("workload,size,prim,prim_search,atim");
    for kind in WorkloadKind::ALL {
        for (label, workload) in select_sizes(presets_for(kind)) {
            let prim = prim_default(&workload, session.hardware());
            let prim_search = prim_search_candidates(&workload, session.hardware())
                .into_iter()
                .filter_map(|c| time_config(&session, &workload, &c).map(|r| (c, r.total_s())))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c);
            let (atim_trace, _) = atim_report(&session, &workload, trials);
            println!(
                "{kind},{label},{},{},{}",
                describe(&prim),
                prim_search
                    .map(|c| describe(&c))
                    .unwrap_or_else(|| "-".into()),
                describe_trace(&atim_trace)
            );
        }
    }
}
