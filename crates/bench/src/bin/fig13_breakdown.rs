//! Fig. 13 — single-DPU runtime breakdown (issuable / idle-memory /
//! idle-core cycles) and normalized instruction count under the PIM-aware
//! optimization ablation, as the paper measures with uPIMulator (§7.3).

use atim_autotune::ScheduleConfig;
use atim_core::prelude::*;
use atim_core::{compile_config, CompileOptions};

fn single_dpu_config(tasklets: i64, cache: i64) -> ScheduleConfig {
    ScheduleConfig {
        spatial_dpus: vec![1],
        reduce_dpus: 1,
        tasklets,
        cache_elems: cache,
        use_cache: true,
        unroll: false,
        host_threads: 1,
        parallel_transfer: true,
    }
}

fn breakdown(session: &Session, title: &str, def: &ComputeDef, cfg: &ScheduleConfig) {
    println!("# Fig 13: {title}");
    println!("opt_level,issuable_pct,idle_memory_pct,idle_core_pct,instructions_norm");
    let mut base_instr = None;
    for level in OptLevel::ALL {
        let module = compile_config(
            cfg,
            def,
            CompileOptions {
                opt_level: level,
                parallel_transfer: true,
            },
            session.hardware(),
        )
        .expect("compile");
        let report = session.time(&module).expect("run");
        let (a, m, c) = report.breakdown.fractions();
        let base = *base_instr.get_or_insert(report.instructions.max(1));
        println!(
            "{},{:.1},{:.1},{:.1},{:.3}",
            level.label(),
            a * 100.0,
            m * 100.0,
            c * 100.0,
            report.instructions as f64 / base as f64
        );
    }
    println!();
}

fn main() {
    let session = atim_bench::session();

    let gemv = ComputeDef::gemv("gemv", 245, 245, 1.0);
    breakdown(
        &session,
        "GEMV (245x245), single DPU, 8 tasklets",
        &gemv,
        &single_dpu_config(8, 64),
    );

    let va = ComputeDef::va("va", 25_000);
    breakdown(
        &session,
        "VA (25000), single DPU, 8 tasklets",
        &va,
        &single_dpu_config(8, 64),
    );
}
