//! Fig. 15 — autotuning overheads: per-iteration tuning time and the spread
//! of candidate execution times, UPMEM (ATiM) vs CPU autotuning (§8).
//!
//! Tuning wall-clock here is the real time spent by this harness per
//! 64-trial iteration (dominated by candidate simulation), mirroring how the
//! paper's measurement is dominated by on-hardware runs; the CPU column uses
//! the host roofline model as the candidate execution time.  Each iteration
//! is tuned twice — once with a sequential one-at-a-time measurer and once
//! with the session's batch-parallel backend (`ATIM_MEASURE_THREADS`
//! workers) — so the output shows the tuning-cost win of batching directly.

use atim_autotune::{tune, tune_batch, Measurer, Trace, TuningOptions};
use atim_core::prelude::*;
use std::time::Instant;

struct RecordingMeasurer<'a> {
    session: &'a Session,
    def: &'a ComputeDef,
    candidate_ms: Vec<f64>,
}

impl Measurer for RecordingMeasurer<'_> {
    fn measure(&mut self, trace: &Trace) -> Option<f64> {
        let latency = self.session.measure(trace, self.def)?;
        self.candidate_ms.push(latency * 1e3);
        Some(latency)
    }
}

fn main() {
    let session = atim_bench::session();
    let def = ComputeDef::mtv("mtv", 4096, 4096);
    let iterations = 8usize;
    let per_iter = 64usize;
    let threads = atim_core::measure::default_measure_threads();

    println!("# Fig 15 (left): per-iteration tuning wall-clock (seconds)");
    println!(
        "# sequential = plain one-at-a-time measurer (no memo); batch = \
         session backend with {threads} threads + cross-round memo"
    );
    println!("iteration,upmem_seq_tuning_s,upmem_par_tuning_s,cpu_tuning_s");
    let mut all_candidates: Vec<f64> = Vec::new();
    let mut total_seq = 0.0;
    let mut total_par = 0.0;
    for it in 0..iterations {
        let options = TuningOptions {
            trials: per_iter,
            population: 64,
            measure_per_round: 16,
            seed: 0x100 + it as u64,
            ..TuningOptions::default()
        };
        let mut measurer = RecordingMeasurer {
            session: &session,
            def: &def,
            candidate_ms: Vec::new(),
        };
        let start = Instant::now();
        let seq_result = tune(&def, session.hardware(), &options, &mut measurer);
        let seq_s = start.elapsed().as_secs_f64();

        let mut batch = BackendMeasurer::new(session.backend(), &def);
        let start = Instant::now();
        let par_result = tune_batch(&def, session.hardware(), &options, &mut batch);
        let par_s = start.elapsed().as_secs_f64();
        assert_eq!(
            seq_result.best, par_result.best,
            "parallel measurement must not change the tuning result"
        );

        // CPU autotuning iteration: measuring 64 CPU candidates, each costing
        // roughly the roofline latency of the kernel.
        let cpu_candidate = atim_sim::cpu::cpu_autotuned(&def, session.hardware()).time_s;
        let cpu_s = cpu_candidate * per_iter as f64;
        println!("{it},{seq_s:.3},{par_s:.3},{cpu_s:.3}");
        total_seq += seq_s;
        total_par += par_s;
        all_candidates.extend(measurer.candidate_ms);
    }
    println!(
        "# total: sequential {total_seq:.2}s, batch subsystem {total_par:.2}s \
         ({:.2}x; includes both thread fan-out and memoization)",
        total_seq / total_par.max(1e-9)
    );

    println!();
    println!("# Fig 15 (right): candidate kernel execution times (ms, log-scale in the paper)");
    println!("candidate,upmem_candidate_ms");
    for (i, ms) in all_candidates.iter().enumerate() {
        println!("{i},{ms:.4}");
    }
    let min = all_candidates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = all_candidates.iter().cloned().fold(0.0f64, f64::max);
    println!();
    println!(
        "# candidate spread: min={min:.3} ms, max={max:.3} ms, ratio={:.1}x",
        max / min
    );
}
