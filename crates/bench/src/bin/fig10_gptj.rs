//! Fig. 10 — performance of the FC (MTV) and MHA (MMTV) operations of
//! GPT-J 6B and 30B (§7.2).
//!
//! By default a representative subset of batch sizes and token counts is
//! evaluated; set `ATIM_FULL=1` for the paper's full grid (batch ∈ {1,4,16},
//! tokens ∈ {64,128,256,512}).

use atim_bench::{evaluate_workload, full_from_env, print_normalized_table, trials_from_env};
use atim_workloads::gptj::{
    fc_layers, fc_workload, mha_workload, GptJModel, BATCH_SIZES, TOKEN_COUNTS,
};

fn main() {
    let session = atim_bench::session();
    let trials = trials_from_env();
    let full = full_from_env();
    let batches: Vec<i64> = if full {
        BATCH_SIZES.to_vec()
    } else {
        vec![1, 16]
    };
    let tokens: Vec<i64> = if full {
        TOKEN_COUNTS.to_vec()
    } else {
        vec![64, 256]
    };

    for model in [GptJModel::B6, GptJModel::B30] {
        println!("## {} — MMTV (multi-head attention)", model.label());
        for &b in &batches {
            for &t in &tokens {
                let w = mha_workload(model, b, t);
                let rows = evaluate_workload(&session, &w, trials);
                print_normalized_table(
                    &format!("Fig 10 MMTV {} batch={b} tokens={t}", model.label()),
                    &w,
                    &rows,
                );
            }
        }
        println!("## {} — MTV (fully-connected layers)", model.label());
        let layers = fc_layers(model);
        let selected = if full {
            layers.clone()
        } else {
            layers[..2].to_vec()
        };
        for layer in selected {
            let w = fc_workload(&layer);
            let rows = evaluate_workload(&session, &w, trials);
            print_normalized_table(
                &format!(
                    "Fig 10 MTV {} {} ({}x{})",
                    model.label(),
                    layer.name,
                    layer.m,
                    layer.k
                ),
                &w,
                &rows,
            );
        }
    }
}
