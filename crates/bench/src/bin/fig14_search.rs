//! Fig. 14 — autotuning efficiency of the balanced sampling and adaptive
//! ε-greedy strategies, individually and combined, against TVM's default
//! evolutionary search (§7.4), swept under **both cost estimators** (the
//! resident ridge regression and the gradient-boosted trees from
//! `atim-model`).
//!
//! Streams the best-so-far throughput (GFLOPS) every few trials for each
//! estimator × strategy pair *as tuning progresses* — each pair runs as a
//! [`TuningSession`] with a [`TuningObserver`] printing records the moment
//! they are measured — plus the wall-clock tuning cost of each sweep.
//! Candidates are measured by the batch-parallel simulator backend
//! (`ATIM_MEASURE_THREADS` workers); each sweep gets a *fresh* measurer so
//! the per-sweep wall-clock numbers are comparable (no memo carry-over
//! between sweeps).  Use `ATIM_TRIALS` to change the budget (default 200;
//! the paper uses 1000), and `ATIM_COST_MODEL=ridge|gbdt` to restrict the
//! sweep to one estimator.

use atim_autotune::search::SearchStrategy;
use atim_autotune::session::{Budget, TuningObserver, TuningSession};
use atim_autotune::{CostModelKind, TuningOptions, TuningRecord};
use atim_core::prelude::*;
use atim_model::GbdtModel;
use std::time::Instant;

/// Streams `estimator,strategy,trial,best_gflops` lines while the search
/// runs.
struct ConvergenceStream {
    estimator: &'static str,
    name: &'static str,
    flops: f64,
    step: usize,
    last: Option<TuningRecord>,
}

impl TuningObserver for ConvergenceStream {
    fn on_trial(&mut self, record: &TuningRecord) {
        if record.trial % self.step == 0 {
            println!(
                "{},{},{},{:.2}",
                self.estimator,
                self.name,
                record.trial,
                self.flops / record.best_so_far_s / 1e9
            );
        }
        self.last = Some(record.clone());
    }
}

fn main() {
    let session = atim_bench::session();
    let trials = std::env::var("ATIM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200usize);
    let def = ComputeDef::gemv("gemv", 4096, 4096, 1.0);
    let flops = def.total_flops() as f64;

    let estimators: Vec<CostModelKind> = match CostModelKind::from_env() {
        Ok(Some(kind)) => vec![kind],
        Ok(None) => vec![CostModelKind::Ridge, CostModelKind::Gbdt],
        Err(e) => panic!("{e}"),
    };
    let strategies = [
        ("None (default TVM)", SearchStrategy::tvm_default()),
        (
            "Balanced sampling",
            SearchStrategy {
                balanced_sampling: true,
                adaptive_epsilon: false,
                ..SearchStrategy::default()
            },
        ),
        (
            "Adaptive epsilon-greedy",
            SearchStrategy {
                balanced_sampling: false,
                adaptive_epsilon: true,
                ..SearchStrategy::default()
            },
        ),
        ("All (ATiM)", SearchStrategy::default()),
    ];

    println!(
        "# Fig 14: best-so-far GFLOPS vs number of trials (GEMV 4096x4096), {} measurement threads",
        atim_core::measure::default_measure_threads()
    );
    println!("estimator,strategy,trial,best_gflops");
    for &estimator in &estimators {
        for (name, strategy) in &strategies {
            let options = TuningOptions {
                trials,
                population: 64,
                measure_per_round: 16,
                seed: 0xF19,
                strategy: strategy.clone(),
            };
            // Fresh measurer per sweep: the cross-round memo still speeds up
            // re-proposed candidates *within* a sweep, but no measurement
            // cost leaks between sweeps, keeping the wall-clock lines
            // comparable.
            let mut measurer = BackendMeasurer::new(session.backend(), &def);
            let mut tuning = TuningSession::new(&def, session.hardware(), &options)
                .expect("harness tuning options are valid");
            if estimator == CostModelKind::Gbdt {
                tuning = tuning.with_cost_estimator(Box::new(GbdtModel::default()));
            }
            let mut stream = ConvergenceStream {
                estimator: estimator.name(),
                name,
                flops,
                step: (trials / 20).max(1),
                last: None,
            };
            let start = Instant::now();
            let result = tuning.run(&mut measurer, &Budget::unlimited(), &mut stream);
            let wall_s = start.elapsed().as_secs_f64();
            if let Some(last) = stream.last.take().filter(|r| r.trial % stream.step != 0) {
                println!(
                    "{},{name},{},{:.2}",
                    estimator.name(),
                    last.trial,
                    flops / last.best_so_far_s / 1e9
                );
            }
            println!(
                "# {}/{name}: wall-clock {wall_s:.2}s for {} measured + {} failed trials \
                 ({} distinct configs, {} memo hits)",
                estimator.name(),
                result.measured,
                result.failed,
                measurer.cache_len(),
                measurer.cache_hits()
            );
        }
    }
}
