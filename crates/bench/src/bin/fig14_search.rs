//! Fig. 14 — autotuning efficiency of the balanced sampling and adaptive
//! ε-greedy strategies, individually and combined, against TVM's default
//! evolutionary search (§7.4).
//!
//! Prints the best-so-far throughput (GFLOPS) every few trials for the four
//! strategies.  Use `ATIM_TRIALS` to change the budget (default 200; the
//! paper uses 1000).

use atim_autotune::search::SearchStrategy;
use atim_autotune::{tune, Measurer, ScheduleConfig, TuningOptions};
use atim_core::prelude::*;

struct SimMeasurer<'a> {
    atim: &'a Atim,
    def: &'a ComputeDef,
}

impl Measurer for SimMeasurer<'_> {
    fn measure(&mut self, config: &ScheduleConfig) -> Option<f64> {
        self.atim.measure_config(config, self.def)
    }
}

fn main() {
    let atim = Atim::default();
    let trials = std::env::var("ATIM_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200usize);
    let def = ComputeDef::gemv("gemv", 4096, 4096, 1.0);
    let flops = def.total_flops() as f64;

    let strategies = [
        ("None (default TVM)", SearchStrategy::tvm_default()),
        (
            "Balanced sampling",
            SearchStrategy {
                balanced_sampling: true,
                adaptive_epsilon: false,
                ..SearchStrategy::default()
            },
        ),
        (
            "Adaptive epsilon-greedy",
            SearchStrategy {
                balanced_sampling: false,
                adaptive_epsilon: true,
                ..SearchStrategy::default()
            },
        ),
        ("All (ATiM)", SearchStrategy::default()),
    ];

    println!("# Fig 14: best-so-far GFLOPS vs number of trials (GEMV 4096x4096)");
    println!("strategy,trial,best_gflops");
    for (name, strategy) in strategies {
        let options = TuningOptions {
            trials,
            population: 64,
            measure_per_round: 16,
            seed: 0xF19,
            strategy,
        };
        let mut measurer = SimMeasurer {
            atim: &atim,
            def: &def,
        };
        let result = tune(&def, atim.hardware(), &options, &mut measurer);
        let step = (trials / 20).max(1);
        for record in result.history.iter().filter(|r| r.trial % step == 0) {
            let gflops = flops / record.best_so_far_s / 1e9;
            println!("{name},{},{:.2}", record.trial, gflops);
        }
        if let Some(last) = result.history.last() {
            println!(
                "{name},{},{:.2}",
                last.trial,
                flops / last.best_so_far_s / 1e9
            );
        }
    }
}
