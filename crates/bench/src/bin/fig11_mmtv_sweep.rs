//! Fig. 11 — ATiM's speedup over PrIM and PrIM+search for MMTV as a function
//! of the spatial-dimension size (#batches × #heads × #tokens), with the
//! reduction dimension fixed at 256 (§7.2).

use atim_bench::{atim_report, prim_report, prim_search_report, trials_from_env};
use atim_core::prelude::*;

fn main() {
    let session = atim_bench::session();
    let trials = trials_from_env();
    println!("# Fig 11: MMTV speedup vs spatial dimension size (reduction = 256)");
    println!("spatial_size,atim_ms,speedup_vs_prim,speedup_vs_prim_search");
    // (heads*batch, tokens) pairs spanning ~1k to ~125k spatial elements.
    for (outer, tokens) in [
        (16i64, 64i64),
        (16, 128),
        (64, 64),
        (64, 128),
        (64, 256),
        (256, 128),
        (256, 256),
        (448, 256),
    ] {
        let spatial = outer * tokens;
        let w = Workload::new(WorkloadKind::Mmtv, vec![outer, tokens, 256]);
        let prim = prim_report(&session, &w).map(|r| r.total_ms());
        let prim_search = prim_search_report(&session, &w).map(|r| r.total_ms());
        let (_, atim_r) = atim_report(&session, &w, trials);
        let atim_ms = atim_r.total_ms();
        println!(
            "{spatial},{atim_ms:.3},{},{}",
            prim.map(|p| format!("{:.3}", p / atim_ms))
                .unwrap_or_else(|| "-".into()),
            prim_search
                .map(|p| format!("{:.3}", p / atim_ms))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
