//! Perf-smoke snapshot of the simulator's bytecode fast path.
//!
//! Measures candidate-measurement wall-clock on the Fig. 9 MMTV/GEMV
//! workload shapes with the fast path (`ATIM_SIM_FASTPATH`) off vs on, and
//! writes a `BENCH_fastpath.json` snapshot so the perf trajectory is tracked
//! across PRs (CI runs this after the criterion smoke).
//!
//! Knobs: `ATIM_SNAPSHOT_OUT` overrides the output path;
//! `ATIM_SNAPSHOT_FULL=1` uses the full paper shapes instead of the CI-sized
//! ones.

use std::time::Instant;

use atim_autotune::{Json, ScheduleConfig};
use atim_core::prelude::*;
use atim_core::SimBackend;

fn candidate_batch(def: &ComputeDef, hw: &UpmemConfig) -> Vec<ScheduleConfig> {
    let base = ScheduleConfig::default_for(def, hw);
    (0..6)
        .map(|i| ScheduleConfig {
            spatial_dpus: vec![16 << (i % 3)],
            tasklets: [8, 12, 16][i % 3],
            cache_elems: [32, 64, 128][(i / 2) % 3],
            ..base.clone()
        })
        .collect()
}

fn time_batch(backend: &SimBackend, def: &ComputeDef, batch: &[ScheduleConfig]) -> f64 {
    let start = Instant::now();
    let results = backend.measure_batch(batch, def);
    assert!(
        results.iter().any(|r| r.is_some()),
        "no candidate measured for {}",
        def.name
    );
    start.elapsed().as_secs_f64()
}

fn main() {
    let full = std::env::var("ATIM_SNAPSHOT_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let hw = UpmemConfig::default();
    let workloads: Vec<ComputeDef> = if full {
        vec![
            ComputeDef::mmtv("mmtv", 64, 512, 256),
            ComputeDef::gemv("gemv", 8192, 1024, 1.0),
        ]
    } else {
        vec![
            ComputeDef::mmtv("mmtv", 16, 128, 128),
            ComputeDef::gemv("gemv", 2048, 512, 1.0),
        ]
    };

    let slow =
        SimBackend::with_threads(hw.clone(), CompileOptions::default(), 1).with_fastpath(false);
    let fast =
        SimBackend::with_threads(hw.clone(), CompileOptions::default(), 1).with_fastpath(true);

    let mut rows = Vec::new();
    for def in &workloads {
        let batch = candidate_batch(def, &hw);
        // Results must agree bit-for-bit; only the wall-clock differs.
        assert_eq!(
            slow.measure_batch(&batch, def),
            fast.measure_batch(&batch, def),
            "fast path changed a measurement for {}",
            def.name
        );
        let slow_s = time_batch(&slow, def, &batch);
        let fast_s = time_batch(&fast, def, &batch);
        let speedup = slow_s / fast_s.max(1e-12);
        eprintln!(
            "{:>6}: slow {slow_s:.3}s  fast {fast_s:.3}s  speedup {speedup:.1}x",
            def.name
        );
        rows.push(Json::Obj(vec![
            ("workload".into(), Json::Str(def.name.clone())),
            ("candidates".into(), Json::Int(batch.len() as i64)),
            ("slow_s".into(), Json::Float(slow_s)),
            ("fast_s".into(), Json::Float(fast_s)),
            ("speedup".into(), Json::Float(speedup)),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("fastpath".into())),
        ("full".into(), Json::Bool(full)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    let out = std::env::var("ATIM_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_fastpath.json".into());
    std::fs::write(&out, format!("{doc}\n")).expect("write snapshot");
    println!("{doc}");
    eprintln!("# wrote {out}");
}
