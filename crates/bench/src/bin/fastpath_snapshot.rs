//! Perf-smoke snapshot of the simulator's bytecode fast path.
//!
//! Measures candidate-measurement wall-clock on the Fig. 9 MMTV/GEMV
//! workload shapes with the fast path (`ATIM_SIM_FASTPATH`) off vs on, and
//! writes a `BENCH_fastpath.json` snapshot so the perf trajectory is tracked
//! across PRs (CI runs this after the criterion smoke).
//!
//! Knobs:
//!
//! * `ATIM_SNAPSHOT_OUT` overrides the output path.
//! * `ATIM_SNAPSHOT_FULL=1` uses the full paper shapes instead of the
//!   CI-sized ones.
//! * `ATIM_SNAPSHOT_BASELINE=<path>` compares the run against a committed
//!   baseline snapshot (`crates/bench/baselines/fastpath_baseline.json` in
//!   CI) and **exits non-zero when any workload's fast-path time per
//!   candidate regresses by more than 2×** — machine-to-machine noise is
//!   well inside that budget, a lost `O(n)`→`O(1)` loop summary is not.

use std::time::Instant;

use atim_autotune::{Json, ScheduleConfig};
use atim_core::prelude::*;
use atim_core::SimBackend;

fn candidate_batch(def: &ComputeDef, hw: &UpmemConfig) -> Vec<Trace> {
    let base = ScheduleConfig::default_for(def, hw);
    (0..6)
        .map(|i| {
            ScheduleConfig {
                spatial_dpus: vec![16 << (i % 3)],
                tasklets: [8, 12, 16][i % 3],
                cache_elems: [32, 64, 128][(i / 2) % 3],
                ..base.clone()
            }
            .to_trace(def)
        })
        .collect()
}

fn time_batch(backend: &SimBackend, def: &ComputeDef, batch: &[Trace]) -> f64 {
    let start = Instant::now();
    let results = backend.measure_batch(batch, def);
    assert!(
        results.iter().any(|r| r.is_some()),
        "no candidate measured for {}",
        def.name
    );
    start.elapsed().as_secs_f64()
}

fn main() {
    let full = std::env::var("ATIM_SNAPSHOT_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let hw = UpmemConfig::default();
    let workloads: Vec<ComputeDef> = if full {
        vec![
            ComputeDef::mmtv("mmtv", 64, 512, 256),
            ComputeDef::gemv("gemv", 8192, 1024, 1.0),
        ]
    } else {
        vec![
            ComputeDef::mmtv("mmtv", 16, 128, 128),
            ComputeDef::gemv("gemv", 2048, 512, 1.0),
        ]
    };

    let slow =
        SimBackend::with_threads(hw.clone(), CompileOptions::default(), 1).with_fastpath(false);
    let fast =
        SimBackend::with_threads(hw.clone(), CompileOptions::default(), 1).with_fastpath(true);

    let mut rows = Vec::new();
    for def in &workloads {
        let batch = candidate_batch(def, &hw);
        // Results must agree bit-for-bit; only the wall-clock differs.
        assert_eq!(
            slow.measure_batch(&batch, def),
            fast.measure_batch(&batch, def),
            "fast path changed a measurement for {}",
            def.name
        );
        let slow_s = time_batch(&slow, def, &batch);
        let fast_s = time_batch(&fast, def, &batch);
        let speedup = slow_s / fast_s.max(1e-12);
        eprintln!(
            "{:>6}: slow {slow_s:.3}s  fast {fast_s:.3}s  speedup {speedup:.1}x",
            def.name
        );
        rows.push(Json::Obj(vec![
            ("workload".into(), Json::Str(def.name.clone())),
            ("candidates".into(), Json::Int(batch.len() as i64)),
            ("slow_s".into(), Json::Float(slow_s)),
            ("fast_s".into(), Json::Float(fast_s)),
            ("speedup".into(), Json::Float(speedup)),
        ]));
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("fastpath".into())),
        ("full".into(), Json::Bool(full)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    let out = std::env::var("ATIM_SNAPSHOT_OUT").unwrap_or_else(|_| "BENCH_fastpath.json".into());
    std::fs::write(&out, format!("{doc}\n")).expect("write snapshot");
    println!("{doc}");
    eprintln!("# wrote {out}");

    if let Ok(baseline_path) = std::env::var("ATIM_SNAPSHOT_BASELINE") {
        let regressions = check_against_baseline(&doc, &baseline_path);
        if regressions > 0 {
            eprintln!("# {regressions} fast-path perf regression(s) vs {baseline_path}");
            std::process::exit(1);
        }
        eprintln!("# perf within 2x of baseline {baseline_path}");
    }
}

/// Per-workload `(fast seconds per candidate, slow/fast speedup)` rows.
fn row_metrics(doc: &Json) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_arr().map(<[Json]>::to_vec));
    for row in rows.ok().into_iter().flatten() {
        let workload = row
            .get("workload")
            .and_then(|w| w.as_str().map(String::from));
        let fast_s = row.get("fast_s").and_then(|v| v.as_f64());
        let candidates = row.get("candidates").and_then(|v| v.as_f64());
        let speedup = row.get("speedup").and_then(|v| v.as_f64());
        if let (Ok(workload), Ok(fast_s), Ok(candidates), Ok(speedup)) =
            (workload, fast_s, candidates, speedup)
        {
            out.push((workload, fast_s / candidates.max(1.0), speedup));
        }
    }
    out
}

/// Compares the current snapshot against a committed baseline; returns the
/// number of regressions.  A workload regresses when **both** its
/// per-candidate fast-path time exceeds 2× the baseline's *and* its
/// same-host slow/fast speedup fell below half the baseline's — the first
/// gate is what the budget is stated in, the second is machine-neutral, so
/// a merely slower CI runner (which shifts slow and fast times equally)
/// cannot trip the gate, while a lost loop summary (which collapses the
/// speedup) cannot hide behind a faster one.  A missing or unreadable
/// baseline only warns, but a provided baseline with **zero comparable
/// workloads** (schema drift) counts as a failure rather than a silent
/// pass.
fn check_against_baseline(doc: &Json, baseline_path: &str) -> usize {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("# warning: cannot read baseline {baseline_path}: {err}");
            return 0;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("# warning: cannot parse baseline {baseline_path}: {err}");
            return 0;
        }
    };
    let base = row_metrics(&baseline);
    let mut regressions = 0;
    let mut compared = 0;
    for (workload, now_s, now_speedup) in row_metrics(doc) {
        let Some((_, base_s, base_speedup)) = base.iter().find(|(w, _, _)| *w == workload) else {
            eprintln!("# warning: workload {workload} missing from baseline");
            continue;
        };
        compared += 1;
        let time_ratio = now_s / base_s.max(1e-12);
        let speedup_ratio = now_speedup / base_speedup.max(1e-12);
        eprintln!(
            "# {workload}: {:.1} ms/candidate vs baseline {:.1} ms ({time_ratio:.2}x); \
             speedup {now_speedup:.1}x vs baseline {base_speedup:.1}x ({speedup_ratio:.2}x)",
            now_s * 1e3,
            base_s * 1e3,
        );
        if time_ratio > 2.0 && speedup_ratio < 0.5 {
            eprintln!(
                "# FAIL: {workload} fast path regressed \
                 ({time_ratio:.2}x time, {speedup_ratio:.2}x speedup)"
            );
            regressions += 1;
        }
    }
    if compared == 0 {
        eprintln!(
            "# FAIL: no workloads comparable against {baseline_path} — \
             snapshot/baseline schema drift would otherwise pass silently"
        );
        regressions += 1;
    }
    regressions
}
