//! Sketch-space comparison — tunes each workload under every **resident
//! schedule-space generator** (`upmem`, `tiled`, `hw-native`) at an equal
//! trial budget and reports the tuned end-to-end latency of each space,
//! normalized to the fixed-knob UPMEM sketch.
//!
//! By default the 4 MB preset of MTV, MMTV and the three sketch-space
//! workloads (batched GEMM, the fused attention block, int8 GEMV) is
//! swept; `ATIM_FULL=1` adds the 64 MB presets.
//!
//! Knobs:
//!
//! * `ATIM_SKETCH_WORKLOADS` — comma-separated workload kinds to sweep
//!   (e.g. `bgemm` for the CI smoke); unknown names fail loudly.
//! * `ATIM_TRIALS` / `ATIM_FULL` / `ATIM_TUNE_LOG` — the usual harness
//!   knobs (per-generator sweeps log under generator-suffixed names).
//! * `ATIM_SKETCH_OUT` — snapshot path (default
//!   `BENCH_sketch_spaces.json`).
//! * `ATIM_SKETCH_BASELINE=<path>` — compares tuned latencies against a
//!   committed baseline (`crates/bench/baselines/sketch_spaces_baseline
//!   .json` in CI) and **exits non-zero when any (workload, generator)
//!   row regresses by more than 1.25×** at the same trial budget — the
//!   simulator is deterministic, so a real schedule-quality regression is
//!   the only thing that can trip this.

use atim_autotune::Json;
use atim_bench::{atim_tuned, full_from_env, session_for_generator, time_trace, trials_from_env};
use atim_core::prelude::*;
use atim_workloads::ops::presets_for;

fn selected_kinds() -> Vec<WorkloadKind> {
    match std::env::var("ATIM_SKETCH_WORKLOADS") {
        Ok(raw) => raw
            .split(',')
            .map(|token| {
                let token = token.trim();
                WorkloadKind::parse(token).unwrap_or_else(|| {
                    panic!("ATIM_SKETCH_WORKLOADS: unknown workload kind {token:?}")
                })
            })
            .collect(),
        Err(_) => vec![
            WorkloadKind::Mtv,
            WorkloadKind::Mmtv,
            WorkloadKind::Bgemm,
            WorkloadKind::Attn,
            WorkloadKind::Qgemv,
        ],
    }
}

fn main() {
    let trials = trials_from_env();
    let labels: &[&str] = if full_from_env() {
        &["4MB", "64MB"]
    } else {
        &["4MB"]
    };
    let mut rows = Vec::new();
    for kind in selected_kinds() {
        for (label, workload) in presets_for(kind)
            .into_iter()
            .filter(|(l, _)| labels.contains(&l.as_str()))
        {
            println!(
                "# sketch spaces — {} ({label}, t{trials})",
                workload.label()
            );
            println!("generator,total_ms,vs_upmem");
            let mut upmem_ms = f64::NAN;
            for &generator in &RESIDENT_GENERATOR_IDS {
                let session = session_for_generator(generator);
                let tuned = atim_tuned(&session, &workload, trials);
                let report =
                    time_trace(&session, &workload, tuned.best_trace()).unwrap_or_default();
                let total_ms = report.total_ms();
                if generator == "upmem" {
                    upmem_ms = total_ms;
                }
                println!("{generator},{total_ms:.4},{:.3}", total_ms / upmem_ms);
                rows.push(Json::Obj(vec![
                    ("workload".into(), Json::Str(workload.label())),
                    ("generator".into(), Json::Str(generator.into())),
                    ("trials".into(), Json::Int(trials as i64)),
                    ("total_ms".into(), Json::Float(total_ms)),
                ]));
            }
            println!();
        }
    }
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("sketch_spaces".into())),
        ("rows".into(), Json::Arr(rows)),
    ]);
    let out =
        std::env::var("ATIM_SKETCH_OUT").unwrap_or_else(|_| "BENCH_sketch_spaces.json".into());
    std::fs::write(&out, format!("{doc}\n")).expect("write snapshot");
    eprintln!("# wrote {out}");

    if let Ok(baseline_path) = std::env::var("ATIM_SKETCH_BASELINE") {
        let regressions = check_against_baseline(&doc, &baseline_path);
        if regressions > 0 {
            eprintln!("# {regressions} tuned-latency regression(s) vs {baseline_path}");
            std::process::exit(1);
        }
        eprintln!("# tuned latencies within 1.25x of baseline {baseline_path}");
    }
}

/// `(workload, generator, trials) → total_ms` rows of a snapshot document.
fn row_metrics(doc: &Json) -> Vec<(String, String, i64, f64)> {
    let mut out = Vec::new();
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_arr().map(<[Json]>::to_vec));
    for row in rows.ok().into_iter().flatten() {
        let workload = row
            .get("workload")
            .and_then(|w| w.as_str().map(String::from));
        let generator = row
            .get("generator")
            .and_then(|g| g.as_str().map(String::from));
        let trials = row.get("trials").and_then(|t| t.as_i64());
        let total_ms = row.get("total_ms").and_then(|v| v.as_f64());
        if let (Ok(workload), Ok(generator), Ok(trials), Ok(total_ms)) =
            (workload, generator, trials, total_ms)
        {
            out.push((workload, generator, trials, total_ms));
        }
    }
    out
}

/// Compares tuned latencies against a committed baseline at the same trial
/// budget; returns the number of regressions.  A missing or unreadable
/// baseline only warns, but a baseline with **zero comparable rows**
/// (schema drift, or a sweep run at a different budget) counts as a
/// failure rather than a silent pass.
fn check_against_baseline(doc: &Json, baseline_path: &str) -> usize {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("# warning: cannot read baseline {baseline_path}: {err}");
            return 0;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("# warning: cannot parse baseline {baseline_path}: {err}");
            return 0;
        }
    };
    let base = row_metrics(&baseline);
    let mut regressions = 0;
    let mut compared = 0;
    for (workload, generator, trials, now_ms) in row_metrics(doc) {
        let Some((_, _, _, base_ms)) = base
            .iter()
            .find(|(w, g, t, _)| *w == workload && *g == generator && *t == trials)
        else {
            continue;
        };
        compared += 1;
        let ratio = now_ms / base_ms.max(1e-12);
        eprintln!(
            "# {workload}/{generator} t{trials}: {now_ms:.3} ms vs baseline \
             {base_ms:.3} ms ({ratio:.2}x)"
        );
        if ratio > 1.25 {
            eprintln!("# FAIL: {workload}/{generator} tuned latency regressed ({ratio:.2}x)");
            regressions += 1;
        }
    }
    if compared == 0 {
        eprintln!(
            "# FAIL: no rows comparable against {baseline_path} — schema or \
             trial-budget drift would otherwise pass silently"
        );
        regressions += 1;
    }
    regressions
}
