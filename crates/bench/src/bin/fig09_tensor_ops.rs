//! Fig. 9 — autotuned performance of the seven tensor operations against
//! PrIM, PrIM(E), PrIM+search, SimplePIM and the autotuned CPU baseline
//! (§7.1).
//!
//! Prints one normalized-latency table per workload and size, in the same
//! structure as the paper's stacked bars (H2D / kernel / D2H+reduction) with
//! the CPU-speedup line.
//!
//! Set `ATIM_FULL=1` to include the 256/512 MB presets and `ATIM_TRIALS` to
//! change the autotuning budget (default 48, paper uses 1000).

use atim_bench::{evaluate_workload, print_normalized_table, select_sizes, trials_from_env};
use atim_core::prelude::*;
use atim_workloads::ops::presets_for;

fn main() {
    let session = atim_bench::session();
    let trials = trials_from_env();
    for kind in WorkloadKind::ALL {
        for (label, workload) in select_sizes(presets_for(kind)) {
            let rows = evaluate_workload(&session, &workload, trials);
            print_normalized_table(&format!("Fig 9 ({kind}, {label})"), &workload, &rows);
        }
    }
}
