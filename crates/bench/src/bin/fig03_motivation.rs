//! Fig. 3 — motivation sweeps: performance impact of caching tile sizes,
//! 2-D tiling schemes and the number of DPUs (§3).
//!
//! Output: three CSV blocks matching Fig. 3(a), (b) and (c).

use atim_autotune::ScheduleConfig;
use atim_bench::time_config;
use atim_core::prelude::*;

fn gemv(m: i64, k: i64) -> Workload {
    Workload::new(WorkloadKind::Gemv, vec![m, k])
}

fn config(spatial: i64, reduce: i64, tasklets: i64, cache: i64) -> ScheduleConfig {
    ScheduleConfig {
        spatial_dpus: vec![spatial],
        reduce_dpus: reduce,
        tasklets,
        cache_elems: cache,
        use_cache: true,
        unroll: false,
        host_threads: 16,
        parallel_transfer: true,
    }
}

fn main() {
    let session = atim_bench::session();

    // (a) Kernel latency vs caching tile size: 512x512 GEMV on a single DPU.
    println!("# Fig 3(a): 512x512 GEMV on 1 DPU, kernel latency vs caching tile size");
    println!("cache_elems,kernel_ms");
    let w = gemv(512, 512);
    for cache in [4i64, 8, 16, 32, 64, 128, 256] {
        let cfg = config(1, 1, 16, cache);
        if let Some(r) = time_config(&session, &w, &cfg) {
            println!("{cache},{:.4}", r.kernel_ms());
        }
    }
    println!();

    // (b) Total latency vs 2-D tiling scheme: 8192x8192 GEMV on 2048 DPUs.
    println!("# Fig 3(b): 8192x8192 GEMV on 2048 DPUs, latency vs tiling scheme (rows x reduce)");
    println!("tile_scheme,h2d_ms,kernel_ms,d2h_reduce_ms,total_ms");
    let w = gemv(8192, 8192);
    for (rows, reduce) in [
        (2048, 1),
        (1024, 2),
        (512, 4),
        (256, 8),
        (128, 16),
        (64, 32),
        (32, 64),
        (16, 128),
    ] {
        let cfg = config(rows, reduce, 16, 64);
        if let Some(r) = time_config(&session, &w, &cfg) {
            println!(
                "{rows}x{reduce},{:.3},{:.3},{:.3},{:.3}",
                r.h2d_s * 1e3,
                r.kernel_ms(),
                (r.d2h_s + r.reduce_s) * 1e3,
                r.total_ms()
            );
        }
    }
    println!();

    // (c) Total latency vs tile shape and the number of DPUs.
    for (m, k) in [(512, 512), (8192, 8192)] {
        println!("# Fig 3(c): {m}x{k} GEMV, latency vs #DPUs (rows-only tiling vs 2-D tiling)");
        println!("num_dpus,rows_only_ms,two_d_ms");
        let w = gemv(m, k);
        for total in [64i64, 128, 256, 512, 1024, 2048] {
            let rows_only = config(total.min(m), 1, 16, 64);
            let two_d = config((total / 8).clamp(1, m), 8.min(k), 16, 64);
            let a = time_config(&session, &w, &rows_only).map(|r| r.total_ms());
            let b = time_config(&session, &w, &two_d).map(|r| r.total_ms());
            println!(
                "{total},{},{}",
                a.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
                b.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
            );
        }
        println!();
    }
}
