//! CPU-autotuned baseline.
//!
//! Thin wrapper over the host-CPU roofline model in `atim-sim`, exposed in
//! terms of [`Workload`]s so benchmark harnesses can ask for "the CPU time of
//! this preset" directly.

use atim_sim::cpu::{cpu_autotuned, CpuEstimate};
use atim_sim::UpmemConfig;
use atim_workloads::Workload;

/// Estimated latency of the autotuned CPU implementation of a workload.
pub fn cpu_latency(workload: &Workload, hw: &UpmemConfig) -> CpuEstimate {
    cpu_autotuned(&workload.compute_def(), hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_workloads::WorkloadKind;

    #[test]
    fn cpu_latency_grows_with_size() {
        let hw = UpmemConfig::default();
        let small = Workload::new(WorkloadKind::Mtv, vec![1024, 1024]);
        let big = Workload::new(WorkloadKind::Mtv, vec![8192, 8192]);
        let a = cpu_latency(&small, &hw);
        let b = cpu_latency(&big, &hw);
        assert!(b.time_s > a.time_s * 10.0);
    }

    #[test]
    fn all_presets_have_finite_estimates() {
        let hw = UpmemConfig::default();
        for kind in WorkloadKind::ALL {
            for (_, w) in atim_workloads::ops::presets_for(kind) {
                let e = cpu_latency(&w, &hw);
                assert!(e.time_s.is_finite() && e.time_s > 0.0);
            }
        }
    }
}
