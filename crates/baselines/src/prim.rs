//! PrIM-style baselines.
//!
//! PrIM (Gómez-Luna et al.) is the hand-optimized UPMEM benchmark suite the
//! paper uses as its primary baseline.  Its kernels share a common recipe:
//!
//! * tensors are tiled along the **outermost spatial dimension only** (1-D
//!   tiling) and distributed across DPUs,
//! * 16 tasklets per DPU,
//! * a fixed WRAM caching tile of 1024 bytes (256 `f32` elements), the value
//!   recommended by the UPMEM programming guide,
//! * no hierarchical reduction for matrix/vector kernels (only RED reduces
//!   per-DPU partials on the host).
//!
//! Three variants are evaluated in the paper:
//!
//! * **PrIM** — the defaults above with the DPU count from the benchmark's
//!   default parameters,
//! * **PrIM(E)** — the DPU count selected by grid search (powers of two),
//! * **PrIM+search** — DPU count, tasklet count and caching tile size all
//!   selected by grid search over independent axes (contrasted in §7.1 with
//!   ATiM's joint search space).

use atim_autotune::ScheduleConfig;
use atim_sim::UpmemConfig;
use atim_workloads::{Workload, WorkloadKind};

/// The PrIM programming-guide caching tile: 1024 bytes of 4-byte elements.
pub const PRIM_CACHE_ELEMS: i64 = 256;

/// The PrIM default tasklet count.
pub const PRIM_TASKLETS: i64 = 16;

/// The default (non-searched) PrIM configuration for a workload.
pub fn prim_default(workload: &Workload, hw: &UpmemConfig) -> ScheduleConfig {
    let total = hw.total_dpus() as i64;
    let shape = &workload.shape;
    let (spatial_dpus, reduce_dpus) = match workload.kind {
        // Element-wise kernels spread over every available DPU.
        WorkloadKind::Va | WorkloadKind::Geva => (vec![shape[0].min(total)], 1),
        // RED: per-DPU partial reduction, host final reduction.
        WorkloadKind::Red => (vec![], default_red_dpus(shape[0], total)),
        // MTV/GEMV (and its int8 variant): 1-D tiling over rows only.
        WorkloadKind::Mtv | WorkloadKind::Gemv | WorkloadKind::Qgemv => {
            (vec![shape[0].min(512.min(total))], 1)
        }
        // TTV: flatten the outer spatial dimensions over DPUs.
        WorkloadKind::Ttv | WorkloadKind::Mmtv => {
            let d0 = shape[0].min(total);
            let d1 = shape[1].min((total / d0).max(1));
            (vec![d0, d1], 1)
        }
        // ATTN's spatial axes are batch and head dim (shape[0], shape[2]).
        // The head dim is split at most in half: a fully-split dim leaves
        // one 4-byte output element per DPU, below the 8-byte DMA grain.
        WorkloadKind::Attn => {
            let d0 = shape[0].min(total);
            let d1 = (shape[2] / 2).max(1).min((total / d0).max(1));
            (vec![d0, d1], 1)
        }
        // BGEMM: distribute batch first, then rows; columns stay per-DPU.
        WorkloadKind::Bgemm => {
            let d0 = shape[0].min(total);
            let d1 = shape[1].min((total / d0).max(1));
            (vec![d0, d1, 1], 1)
        }
    };
    ScheduleConfig {
        spatial_dpus,
        reduce_dpus,
        tasklets: PRIM_TASKLETS,
        cache_elems: PRIM_CACHE_ELEMS,
        // ATTN streams K/V: caching all three operands of the fused block
        // (one holding a full sequence span per tile) overflows WRAM.
        use_cache: workload.kind != WorkloadKind::Attn,
        unroll: false,
        host_threads: 1,
        parallel_transfer: true,
    }
}

fn default_red_dpus(n: i64, total: i64) -> i64 {
    // PrIM's RED defaults use 256-1024 DPUs depending on the input size.
    let per_dpu = 64 * 1024;
    (n / per_dpu).clamp(256.min(total), 1024.min(total))
}

/// The DPU-count grid searched by PrIM(E): powers of two, `2^5..2^11` for
/// MMTV and `2^8..2^11` for the other kernels (§6).
pub fn prim_e_candidates(workload: &Workload, hw: &UpmemConfig) -> Vec<ScheduleConfig> {
    let range: Vec<i64> = match workload.kind {
        WorkloadKind::Mmtv => (5..=11).map(|p| 1i64 << p).collect(),
        _ => (8..=11).map(|p| 1i64 << p).collect(),
    };
    let base = prim_default(workload, hw);
    range
        .into_iter()
        .filter(|&d| d <= hw.total_dpus() as i64)
        .map(|dpus| with_dpus(&base, workload, dpus))
        .collect()
}

/// The independent-axis grid searched by PrIM+search: DPU count × tasklets ×
/// caching tile size (still 1-D tiling, still no hierarchical reduction).
pub fn prim_search_candidates(workload: &Workload, hw: &UpmemConfig) -> Vec<ScheduleConfig> {
    let mut out = Vec::new();
    let tasklet_grid = [8i64, 16, 24];
    let cache_grid = [8i64, 16, 32, 64, 128, 256];
    for base in prim_e_candidates(workload, hw) {
        for &t in &tasklet_grid {
            for &c in &cache_grid {
                let mut cfg = base.clone();
                cfg.tasklets = t.min(hw.max_tasklets as i64);
                cfg.cache_elems = c;
                out.push(cfg);
            }
        }
    }
    out
}

/// Rewrites the DPU-count decision of a PrIM configuration while keeping its
/// 1-D tiling discipline.
fn with_dpus(base: &ScheduleConfig, workload: &Workload, dpus: i64) -> ScheduleConfig {
    let mut cfg = base.clone();
    let shape = &workload.shape;
    match workload.kind {
        WorkloadKind::Red => cfg.reduce_dpus = dpus.min(shape[0]),
        WorkloadKind::Va
        | WorkloadKind::Geva
        | WorkloadKind::Mtv
        | WorkloadKind::Gemv
        | WorkloadKind::Qgemv => {
            cfg.spatial_dpus = vec![dpus.min(shape[0])];
        }
        WorkloadKind::Ttv | WorkloadKind::Mmtv => {
            let d0 = shape[0].min(dpus);
            let d1 = (dpus / d0).max(1).min(shape[1]);
            cfg.spatial_dpus = vec![d0, d1];
        }
        WorkloadKind::Attn => {
            let d0 = shape[0].min(dpus);
            let d1 = (dpus / d0).max(1).min((shape[2] / 2).max(1));
            cfg.spatial_dpus = vec![d0, d1];
        }
        WorkloadKind::Bgemm => {
            let d0 = shape[0].min(dpus);
            let d1 = (dpus / d0).max(1).min(shape[1]);
            cfg.spatial_dpus = vec![d0, d1, 1];
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use atim_autotune::verify_trace;

    fn hw() -> UpmemConfig {
        UpmemConfig::default()
    }

    #[test]
    fn prim_defaults_follow_the_programming_guide() {
        let w = Workload::new(WorkloadKind::Mtv, vec![4096, 4096]);
        let cfg = prim_default(&w, &hw());
        assert_eq!(cfg.tasklets, 16);
        assert_eq!(cfg.cache_elems, 256);
        assert!(!cfg.uses_rfactor(), "PrIM MTV uses 1-D tiling only");
        assert_eq!(cfg.spatial_dpus, vec![512]);
    }

    #[test]
    fn prim_defaults_verify_for_all_presets() {
        for kind in WorkloadKind::ALL {
            for (label, w) in atim_workloads::ops::presets_for(kind) {
                let cfg = prim_default(&w, &hw());
                let def = w.compute_def();
                assert!(
                    verify_trace(&cfg.to_trace(&def), &def, &hw()).is_ok(),
                    "{kind} {label}: {cfg:?} rejected"
                );
            }
        }
    }

    #[test]
    fn prim_e_grid_matches_paper_ranges() {
        let mmtv = Workload::new(WorkloadKind::Mmtv, vec![256, 512, 512]);
        let cands = prim_e_candidates(&mmtv, &hw());
        assert_eq!(cands.len(), 7); // 2^5..2^11
        let mtv = Workload::new(WorkloadKind::Mtv, vec![8192, 8192]);
        let cands = prim_e_candidates(&mtv, &hw());
        assert_eq!(cands.len(), 4); // 2^8..2^11
        assert!(cands.iter().all(|c| !c.uses_rfactor()));
    }

    #[test]
    fn prim_search_grid_is_the_cartesian_product() {
        let w = Workload::new(WorkloadKind::Va, vec![1 << 24]);
        let cands = prim_search_candidates(&w, &hw());
        assert_eq!(cands.len(), 4 * 3 * 6);
        // Still no joint-space decisions: reduction tiling never appears.
        assert!(cands.iter().all(|c| !c.uses_rfactor()));
    }

    #[test]
    fn red_uses_hierarchical_reduction_by_construction() {
        let w = Workload::new(WorkloadKind::Red, vec![1 << 24]);
        let cfg = prim_default(&w, &hw());
        assert!(cfg.uses_rfactor());
        assert!(cfg.spatial_dpus.is_empty());
    }
}
