//! SimplePIM-style baseline.
//!
//! SimplePIM (Chen et al., PACT'23) trades performance for a concise
//! map/reduce-style interface over **one-dimensional** arrays.  §7.1 of the
//! ATiM paper attributes its slowdowns to two concrete behaviours, which this
//! module models on top of the shared compilation/simulation pipeline:
//!
//! * **Whole-tensor DPU→host copies**: the framework's generic result
//!   gathering copies the entire output array from every rank instead of
//!   only the produced tiles, inflating D2H time by roughly the ratio of
//!   total output bytes to per-DPU useful bytes (4–11× slower VA/GEVA in the
//!   paper).
//! * **Barrier-based partial reduction**: each reduction step uses a global
//!   tasklet barrier plus library-function call overhead instead of PrIM's
//!   two-thread handshake, adding per-step kernel time and host-side
//!   aggregation overhead.

use atim_autotune::ScheduleConfig;
use atim_sim::{ExecutionReport, UpmemConfig};
use atim_workloads::{Workload, WorkloadKind};

use crate::prim::{prim_default, PRIM_CACHE_ELEMS};

/// Whether SimplePIM supports a workload at all (1-D arrays only).
pub fn supports(kind: WorkloadKind) -> bool {
    matches!(
        kind,
        WorkloadKind::Va | WorkloadKind::Geva | WorkloadKind::Red
    )
}

/// The schedule SimplePIM's code generator effectively produces for a
/// supported workload: every DPU, 16 tasklets, guide-sized caching tiles.
///
/// # Panics
/// Panics if the workload is not supported (see [`supports`]).
pub fn simplepim_config(workload: &Workload, hw: &UpmemConfig) -> ScheduleConfig {
    assert!(
        supports(workload.kind),
        "SimplePIM only supports 1-D workloads (VA, GEVA, RED)"
    );
    let mut cfg = prim_default(workload, hw);
    cfg.cache_elems = PRIM_CACHE_ELEMS;
    cfg.host_threads = 1;
    cfg
}

/// Framework overheads applied on top of the simulated execution of
/// [`simplepim_config`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplePimOverheads {
    /// Multiplier on D2H time caused by whole-tensor copies.
    pub d2h_inflation: f64,
    /// Extra kernel time per barrier-synchronized reduction step (seconds).
    pub barrier_step_s: f64,
    /// Multiplier on host final-reduction time from generic library calls.
    pub host_reduce_inflation: f64,
}

impl Default for SimplePimOverheads {
    fn default() -> Self {
        SimplePimOverheads {
            d2h_inflation: 6.0,
            barrier_step_s: 2.5e-6,
            host_reduce_inflation: 3.0,
        }
    }
}

/// Applies SimplePIM's framework overheads to a report obtained by running
/// [`simplepim_config`] through the standard pipeline.
pub fn adjust_report(
    workload: &Workload,
    report: &ExecutionReport,
    overheads: &SimplePimOverheads,
) -> ExecutionReport {
    let mut r = report.clone();
    match workload.kind {
        WorkloadKind::Va | WorkloadKind::Geva => {
            // The output gather copies the whole tensor from every rank.
            r.d2h_s *= overheads.d2h_inflation;
        }
        WorkloadKind::Red => {
            // log2(tasklets) barrier-synchronized reduction steps per DPU.
            let steps = (report.tasklets.max(2) as f64).log2().ceil();
            r.kernel_s += steps * overheads.barrier_step_s;
            r.reduce_s = (r.reduce_s * overheads.host_reduce_inflation).max(5.0e-6);
        }
        _ => {}
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_matrix_matches_paper() {
        assert!(supports(WorkloadKind::Va));
        assert!(supports(WorkloadKind::Red));
        assert!(!supports(WorkloadKind::Mtv));
        assert!(!supports(WorkloadKind::Mmtv));
    }

    #[test]
    #[should_panic(expected = "1-D workloads")]
    fn unsupported_workload_panics() {
        let w = Workload::new(WorkloadKind::Mtv, vec![64, 64]);
        simplepim_config(&w, &UpmemConfig::default());
    }

    #[test]
    fn va_adjustment_inflates_d2h_only() {
        let w = Workload::new(WorkloadKind::Va, vec![1 << 20]);
        let base = ExecutionReport {
            h2d_s: 1e-3,
            kernel_s: 2e-3,
            d2h_s: 1e-3,
            reduce_s: 0.0,
            ..Default::default()
        };
        let adj = adjust_report(&w, &base, &SimplePimOverheads::default());
        assert_eq!(adj.h2d_s, base.h2d_s);
        assert_eq!(adj.kernel_s, base.kernel_s);
        assert!(adj.d2h_s > base.d2h_s * 5.0);
    }

    #[test]
    fn red_adjustment_adds_barrier_and_host_overheads() {
        let w = Workload::new(WorkloadKind::Red, vec![1 << 20]);
        let base = ExecutionReport {
            kernel_s: 1e-3,
            reduce_s: 1e-5,
            tasklets: 16,
            ..Default::default()
        };
        let adj = adjust_report(&w, &base, &SimplePimOverheads::default());
        assert!(adj.kernel_s > base.kernel_s);
        assert!(adj.reduce_s > base.reduce_s);
    }
}
