//! # atim-baselines — the comparison points of the paper's evaluation
//!
//! The paper compares ATiM against four configurations (§6):
//!
//! * [`prim`] — **PrIM / PrIM(E) / PrIM+search**: hand-tuned kernels
//!   following the PrIM programming guide (1-D row tiling, fixed 1024-byte
//!   caching tiles, 16 tasklets, no hierarchical reduction), optionally with
//!   a grid search over the DPU count (PrIM(E)) or over DPU count, tasklets
//!   and caching tile size (PrIM+search).
//! * [`simplepim`] — **SimplePIM**: a 1-D map/reduce framework whose
//!   convenience costs it whole-tensor DPU→host copies and barrier-heavy
//!   partial reductions.
//! * [`cpu`] — **CPU-autotuned**: a multi-threaded, vectorized CPU
//!   implementation modelled with a bandwidth/compute roofline.
//!
//! All PIM baselines are expressed as [`atim_autotune::ScheduleConfig`]
//! points so they run through exactly the same compilation and simulation
//! pipeline as ATiM's autotuned schedules; only the schedule decisions
//! differ, which is precisely the comparison the paper makes.
//!
//! # Example
//!
//! ```
//! use atim_baselines::prim::prim_default;
//! use atim_sim::UpmemConfig;
//! use atim_workloads::{Workload, WorkloadKind};
//!
//! let hw = UpmemConfig::small();
//! let workload = Workload::new(WorkloadKind::Mtv, vec![256, 256]);
//! let cfg = prim_default(&workload, &hw);
//! // PrIM's guide: 1-D row tiling, no hierarchical reduction.
//! assert!(cfg.num_dpus() >= 1);
//! assert!(!cfg.uses_rfactor());
//! ```

pub mod cpu;
pub mod prim;
pub mod simplepim;
